//! Order-preserving parallel map utilities shared by the experiment harness
//! and the fleet-scoring [`engine`](crate::engine).
//!
//! Built on `std::thread::scope`, so borrowed inputs work without `Arc` and
//! a panicking worker propagates to the caller. Work is split into one
//! contiguous chunk per thread, which preserves output order by
//! construction and keeps per-item overhead at a single index computation.
//!
//! # Nesting
//!
//! Calls are **nesting-aware** through a thread-local *thread budget*: a
//! top-level map may use up to `available_parallelism` threads, and each
//! worker it spawns inherits an equal share of that budget for any maps it
//! runs in turn — so total concurrency stays ≈ the core count however
//! deeply maps nest. The sharded fleet relies on this: a
//! [`ShardedFleet::tick`](crate::engine::shard::ShardedFleet::tick) maps
//! over its shards in parallel and each shard's engine maps over its
//! resident pipelines; on a 16-core box a 4-shard tick runs 4 shard
//! workers × 4 pipeline threads each instead of either 4×16
//! oversubscription or 4×1 idle cores. The ordering guarantee is identical
//! at every depth.

/// Order-preserving parallel map over a slice.
///
/// Uses up to `available_parallelism` threads (falling back to 4 when the
/// parallelism probe fails; bounded by the inherited budget when nested —
/// see the module docs) and degrades to a plain sequential map for
/// single-item or single-thread workloads, so callers can use it
/// unconditionally.
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let budget = thread_budget();
    let threads = budget.min(items.len().max(1));
    if threads <= 1 {
        return items.iter().map(&f).collect();
    }
    let child_budget = (budget / threads).max(1);
    let chunk = items.len().div_ceil(threads);
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| {
                s.spawn(move || in_worker(child_budget, || c.iter().map(f).collect::<Vec<R>>()))
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel_map worker panicked"))
            .collect()
    })
}

/// Order-preserving parallel map over a mutable slice: each item is visited
/// exactly once with exclusive access, and the per-item results come back in
/// input order. This is the fleet engine's scoring primitive — one stateful
/// per-user pipeline per item, advanced concurrently.
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn parallel_map_mut<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&mut T) -> R + Sync,
{
    let budget = thread_budget();
    let threads = budget.min(items.len().max(1));
    if threads <= 1 {
        return items.iter_mut().map(&f).collect();
    }
    let child_budget = (budget / threads).max(1);
    let chunk = items.len().div_ceil(threads);
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks_mut(chunk)
            .map(|c| {
                s.spawn(move || in_worker(child_budget, || c.iter_mut().map(f).collect::<Vec<R>>()))
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel_map_mut worker panicked"))
            .collect()
    })
}

thread_local! {
    /// The nested-map thread budget for the current thread: `None` at top
    /// level (use the machine's parallelism), `Some(n)` inside a map
    /// worker (this thread's share of its parent's budget).
    static THREAD_BUDGET: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// Threads the current context may use for a map: the inherited worker
/// share, or the machine parallelism at top level.
fn thread_budget() -> usize {
    THREAD_BUDGET.with(|b| b.get()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    })
}

/// Runs `work` with the current thread's budget set to `budget`. Worker
/// threads are fresh per scope, but save/restore anyway so the behaviour
/// does not depend on that detail.
fn in_worker<R>(budget: usize, work: impl FnOnce() -> R) -> R {
    let previous = THREAD_BUDGET.with(|b| b.replace(Some(budget)));
    let result = work();
    THREAD_BUDGET.with(|b| b.set(previous));
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_small_inputs() {
        assert_eq!(parallel_map(&[1], |&x: &i32| x + 1), vec![2]);
        let empty: Vec<i32> = Vec::new();
        assert!(parallel_map(&empty, |&x: &i32| x).is_empty());
    }

    #[test]
    fn parallel_map_mut_mutates_every_item_once() {
        let mut items: Vec<u64> = (0..257).collect();
        let out = parallel_map_mut(&mut items, |x| {
            *x += 1;
            *x
        });
        assert_eq!(items, (1..258).collect::<Vec<_>>());
        assert_eq!(out, items);
    }

    #[test]
    fn parallel_map_mut_handles_small_inputs() {
        let mut empty: Vec<i32> = Vec::new();
        assert!(parallel_map_mut(&mut empty, |x| *x).is_empty());
        let mut one = vec![7];
        assert_eq!(parallel_map_mut(&mut one, |x| *x * 3), vec![21]);
    }

    #[test]
    fn nested_maps_split_the_thread_budget_and_stay_ordered() {
        // An outer parallel map whose items each run an inner map: every
        // worker's inner budget must be its fair share of the machine
        // budget (total concurrency ≈ core count, never outer × cores),
        // and the combined output must stay in order.
        let machine = thread_budget();
        let outer: Vec<u64> = (0..16).collect();
        let outer_threads = machine.min(outer.len());
        let expected_inner_budget = (machine / outer_threads.max(1)).max(1);
        let out = parallel_map(&outer, |&x| {
            let inner: Vec<u64> = (0..8).collect();
            let inner_budget = thread_budget();
            let sums = parallel_map(&inner, |&y| x * 100 + y);
            (inner_budget, sums)
        });
        for (x, (inner_budget, sums)) in out.iter().enumerate() {
            // Single-thread runners never spawn workers, so the inner call
            // sees the full (=1) machine budget rather than a worker share.
            if outer_threads > 1 {
                assert_eq!(
                    *inner_budget, expected_inner_budget,
                    "worker budget must be the parent's share"
                );
                assert!(*inner_budget * outer_threads <= machine.max(outer_threads));
            }
            let expected: Vec<u64> = (0..8).map(|y| x as u64 * 100 + y).collect();
            assert_eq!(sums, &expected);
        }
    }
}
