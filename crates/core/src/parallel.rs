//! Order-preserving parallel map utilities shared by the experiment harness
//! and the fleet-scoring [`engine`](crate::engine).
//!
//! Built on `std::thread::scope`, so borrowed inputs work without `Arc` and
//! a panicking worker propagates to the caller. Work is split into one
//! contiguous chunk per thread, which preserves output order by
//! construction and keeps per-item overhead at a single index computation.

/// Order-preserving parallel map over a slice.
///
/// Uses up to `available_parallelism` threads (falling back to 4 when the
/// parallelism probe fails) and degrades to a plain sequential map for
/// single-item or single-thread workloads, so callers can use it
/// unconditionally.
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = num_threads(items.len());
    if threads <= 1 {
        return items.iter().map(&f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| s.spawn(move || c.iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel_map worker panicked"))
            .collect()
    })
}

/// Order-preserving parallel map over a mutable slice: each item is visited
/// exactly once with exclusive access, and the per-item results come back in
/// input order. This is the fleet engine's scoring primitive — one stateful
/// per-user pipeline per item, advanced concurrently.
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn parallel_map_mut<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&mut T) -> R + Sync,
{
    let threads = num_threads(items.len());
    if threads <= 1 {
        return items.iter_mut().map(&f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks_mut(chunk)
            .map(|c| s.spawn(move || c.iter_mut().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel_map_mut worker panicked"))
            .collect()
    })
}

fn num_threads(items: usize) -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(items.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_small_inputs() {
        assert_eq!(parallel_map(&[1], |&x: &i32| x + 1), vec![2]);
        let empty: Vec<i32> = Vec::new();
        assert!(parallel_map(&empty, |&x: &i32| x).is_empty());
    }

    #[test]
    fn parallel_map_mut_mutates_every_item_once() {
        let mut items: Vec<u64> = (0..257).collect();
        let out = parallel_map_mut(&mut items, |x| {
            *x += 1;
            *x
        });
        assert_eq!(items, (1..258).collect::<Vec<_>>());
        assert_eq!(out, items);
    }

    #[test]
    fn parallel_map_mut_handles_small_inputs() {
        let mut empty: Vec<i32> = Vec::new();
        assert!(parallel_map_mut(&mut empty, |x| *x).is_empty());
        let mut one = vec![7];
        assert_eq!(parallel_map_mut(&mut one, |x| *x * 3), vec![21]);
    }
}
