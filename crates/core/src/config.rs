use serde::{Deserialize, Serialize};

use crate::features::DeviceSet;
use crate::CoreError;

/// Whether authentication uses per-context models or one unified model —
/// the context ablation axis of Table VII.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ContextMode {
    /// One model trained on all windows regardless of context
    /// ("w/o context" rows).
    Unified,
    /// One model per detected coarse context ("w/ context" rows) — the
    /// deployed configuration.
    PerContext,
}

impl ContextMode {
    /// Both modes, unified first (Table VII row order).
    pub const ALL: [ContextMode; 2] = [ContextMode::Unified, ContextMode::PerContext];

    /// Display name matching Table VII.
    pub fn name(&self) -> &'static str {
        match self {
            ContextMode::Unified => "w/o context",
            ContextMode::PerContext => "w/ context",
        }
    }
}

/// Deployment parameters of the SmarterYou system (§V's design choices).
///
/// Defaults are the paper's deployed configuration: 6-second windows at
/// 50 Hz, 800-window training sets, per-context KRR with the identity
/// kernel, phone + watch features.
///
/// # Example
///
/// ```
/// use smarteryou_core::{ContextMode, DeviceSet, SystemConfig};
///
/// let cfg = SystemConfig::paper_default()
///     .with_window_secs(8.0)
///     .with_device_set(DeviceSet::PhoneOnly);
/// assert_eq!(cfg.window_secs(), 8.0);
/// assert_eq!(cfg.context_mode(), ContextMode::PerContext);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    window_secs: f64,
    sample_rate: f64,
    data_size: usize,
    rho: f64,
    accept_threshold: f64,
    context_mode: ContextMode,
    device_set: DeviceSet,
}

impl SystemConfig {
    /// The deployed configuration from the paper's design study.
    pub fn paper_default() -> Self {
        SystemConfig {
            window_secs: 6.0,      // §V-F3: stable beyond 6 s
            sample_rate: 50.0,     // §V-A
            data_size: 800,        // §V-F3: accuracy peaks near 800
            rho: 1.0,              // ridge parameter of Eq. 5
            accept_threshold: 0.2, // security-leaning operating point (§V-F3)
            context_mode: ContextMode::PerContext,
            device_set: DeviceSet::Combined,
        }
    }

    /// Window length in seconds.
    pub fn window_secs(&self) -> f64 {
        self.window_secs
    }

    /// Sensor sampling rate in Hz.
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }

    /// Samples per window.
    pub fn window_samples(&self) -> usize {
        (self.window_secs * self.sample_rate).round().max(1.0) as usize
    }

    /// Total training windows per model (positives + negatives).
    pub fn data_size(&self) -> usize {
        self.data_size
    }

    /// Ridge parameter ρ of Eq. 5.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// Decision threshold on the confidence score; scores at or above it
    /// accept the user. The default (0.2) is the security-leaning operating
    /// point that lands the paper's FRR/FAR balance (§V-F3 argues a large
    /// FAR is more harmful than a large FRR).
    pub fn accept_threshold(&self) -> f64 {
        self.accept_threshold
    }

    /// Context handling mode.
    pub fn context_mode(&self) -> ContextMode {
        self.context_mode
    }

    /// Device ablation choice.
    pub fn device_set(&self) -> DeviceSet {
        self.device_set
    }

    /// Sets the window length.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is not strictly positive.
    pub fn with_window_secs(mut self, secs: f64) -> Self {
        assert!(secs > 0.0, "window length must be positive");
        self.window_secs = secs;
        self
    }

    /// Sets the sampling rate.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is not strictly positive.
    pub fn with_sample_rate(mut self, hz: f64) -> Self {
        assert!(hz > 0.0, "sample rate must be positive");
        self.sample_rate = hz;
        self
    }

    /// Sets the training-set size (total windows, both classes).
    ///
    /// # Panics
    ///
    /// Panics if `n < 20` (too small for stratified 10-fold CV).
    pub fn with_data_size(mut self, n: usize) -> Self {
        assert!(n >= 20, "data size too small");
        self.data_size = n;
        self
    }

    /// Sets the ridge parameter.
    ///
    /// # Panics
    ///
    /// Panics if `rho` is not strictly positive and finite.
    pub fn with_rho(mut self, rho: f64) -> Self {
        assert!(rho.is_finite() && rho > 0.0, "rho must be positive");
        self.rho = rho;
        self
    }

    /// Sets the acceptance threshold.
    pub fn with_accept_threshold(mut self, t: f64) -> Self {
        self.accept_threshold = t;
        self
    }

    /// Sets the context mode.
    pub fn with_context_mode(mut self, mode: ContextMode) -> Self {
        self.context_mode = mode;
        self
    }

    /// Sets the device ablation.
    pub fn with_device_set(mut self, devices: DeviceSet) -> Self {
        self.device_set = devices;
        self
    }

    /// Validates cross-field consistency (window must hold at least a few
    /// samples for the DFT features to exist).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when the window is too short.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.window_samples() < 8 {
            return Err(CoreError::InvalidConfig(format!(
                "window of {} samples is too short for spectral features",
                self.window_samples()
            )));
        }
        Ok(())
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_design_study() {
        let cfg = SystemConfig::paper_default();
        assert_eq!(cfg.window_secs(), 6.0);
        assert_eq!(cfg.sample_rate(), 50.0);
        assert_eq!(cfg.window_samples(), 300);
        assert_eq!(cfg.data_size(), 800);
        assert_eq!(cfg.context_mode(), ContextMode::PerContext);
        assert_eq!(cfg.device_set(), DeviceSet::Combined);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn builders_update_fields() {
        let cfg = SystemConfig::paper_default()
            .with_window_secs(2.0)
            .with_sample_rate(100.0)
            .with_data_size(200)
            .with_rho(0.5)
            .with_accept_threshold(0.0)
            .with_context_mode(ContextMode::Unified)
            .with_device_set(DeviceSet::WatchOnly);
        assert_eq!(cfg.window_samples(), 200);
        assert_eq!(cfg.rho(), 0.5);
        assert_eq!(cfg.accept_threshold(), 0.0);
        assert_eq!(cfg.context_mode().name(), "w/o context");
    }

    #[test]
    fn too_short_window_fails_validation() {
        let cfg = SystemConfig::paper_default()
            .with_window_secs(0.1)
            .with_sample_rate(50.0);
        assert!(matches!(cfg.validate(), Err(CoreError::InvalidConfig(_))));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_panics() {
        SystemConfig::paper_default().with_window_secs(0.0);
    }
}
