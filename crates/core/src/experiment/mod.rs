//! Experiment harness: the code behind every table and figure of the
//! paper's evaluation (§V). The `repro-*` binaries in `smarteryou-bench`
//! are thin wrappers over these functions.

mod attacks;
mod auth_eval;
mod complexity;
mod context_eval;
mod data;
mod drift_eval;

pub use attacks::{masquerade_experiment, MasqueradeConfig, MasqueradeReport};
pub use auth_eval::{
    data_size_sweep, evaluate_authentication, evaluate_per_context, evaluate_single_user,
    window_size_sweep, AuthPerformance, DataSizePoint, WindowSizePoint,
};
pub use complexity::{complexity_experiment, ComplexityReport};
pub use context_eval::{context_detection_experiment, ContextDetectionReport};
pub use data::{
    collect_population_features, project_features, PopulationFeatures, UserFeatureData,
};
pub use drift_eval::{drift_experiment, DriftReport};

use serde::{Deserialize, Serialize};
use smarteryou_sensors::GeneratorConfig;

use crate::config::SystemConfig;

/// Shared knobs for the evaluation experiments.
///
/// [`ExperimentConfig::paper_default`] mirrors §V-A (35 users, two weeks of
/// free-form usage, 6-second windows, 800-sample training sets, 10-fold
/// cross-validation); [`ExperimentConfig::quick`] is a down-scaled variant
/// for tests and smoke runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Number of simulated participants.
    pub num_users: usize,
    /// Master seed; every derived RNG stream is a function of it.
    pub seed: u64,
    /// Days of free-form usage the collection spans.
    pub days: f64,
    /// Windows collected per user per coarse context.
    pub windows_per_context: usize,
    /// Window length in seconds.
    pub window_secs: f64,
    /// Sensor sampling rate in Hz.
    pub sample_rate: f64,
    /// Training-set size (positives + negatives) per model.
    pub data_size: usize,
    /// Ridge parameter ρ.
    pub rho: f64,
    /// KRR acceptance threshold (see [`SystemConfig::accept_threshold`]).
    pub accept_threshold: f64,
    /// Cross-validation folds (the paper uses 10).
    pub folds: usize,
    /// Cross-validation repetitions averaged over (the paper uses 1000; we
    /// default lower since the simulator can generate fresh data at will).
    pub repeats: usize,
    /// Sensor-generator tunables (noise, outliers, drift).
    pub generator: GeneratorConfig,
}

impl ExperimentConfig {
    /// The paper's evaluation scale.
    pub fn paper_default() -> Self {
        ExperimentConfig {
            num_users: 35,
            seed: 42,
            days: 14.0,
            windows_per_context: 450,
            window_secs: 6.0,
            sample_rate: 50.0,
            data_size: 800,
            rho: 1.0,
            accept_threshold: 0.2,
            folds: 10,
            repeats: 2,
            generator: GeneratorConfig::default(),
        }
    }

    /// A small configuration that keeps unit/integration tests fast while
    /// exercising the full code path.
    pub fn quick() -> Self {
        ExperimentConfig {
            num_users: 8,
            seed: 42,
            days: 6.0,
            windows_per_context: 60,
            window_secs: 2.0,
            sample_rate: 50.0,
            data_size: 80,
            rho: 1.0,
            accept_threshold: 0.2,
            folds: 5,
            repeats: 1,
            generator: GeneratorConfig::default(),
        }
    }

    /// The [`SystemConfig`] equivalent of this experiment configuration.
    pub fn system_config(&self) -> SystemConfig {
        SystemConfig::paper_default()
            .with_window_secs(self.window_secs)
            .with_sample_rate(self.sample_rate)
            .with_data_size(self.data_size)
            .with_rho(self.rho)
            .with_accept_threshold(self.accept_threshold)
    }

    /// Window spec for the sensor generator.
    pub fn window_spec(&self) -> smarteryou_sensors::WindowSpec {
        smarteryou_sensors::WindowSpec::from_seconds(self.window_secs, self.sample_rate)
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig::paper_default()
    }
}

pub(crate) use crate::parallel::parallel_map;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section_v() {
        let cfg = ExperimentConfig::paper_default();
        assert_eq!(cfg.num_users, 35);
        assert_eq!(cfg.data_size, 800);
        assert_eq!(cfg.folds, 10);
        assert_eq!(cfg.window_spec().samples, 300);
        assert_eq!(cfg.system_config().data_size(), 800);
    }
}
