//! Masquerading (mimicry) attack evaluation — Figure 6 (§V-G).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use smarteryou_sensors::{MimicryAttacker, Population, RawContext, TraceGenerator, UsageContext};

use super::data::collect_population_features;
use super::{parallel_map, ExperimentConfig};
use crate::features::DeviceSet;
use crate::server::TrainingServer;

/// Parameters of the masquerade experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MasqueradeConfig {
    /// Attack trials per victim (the paper ran 20).
    pub trials_per_victim: usize,
    /// Maximum attack duration in windows (10 × 6 s = 60 s, Figure 6's
    /// x-axis).
    pub horizon_windows: usize,
}

impl Default for MasqueradeConfig {
    fn default() -> Self {
        MasqueradeConfig {
            trials_per_victim: 20,
            horizon_windows: 10,
        }
    }
}

/// Result of the masquerade experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MasqueradeReport {
    /// `survival[k]` = fraction of attack trials still authenticated after
    /// `k` windows (`survival[0] == 1`). Figure 6 plots this against
    /// `k × window_secs` seconds.
    pub survival: Vec<f64>,
    /// Window length in seconds (x-axis scale).
    pub window_secs: f64,
    /// Total trials run.
    pub trials: usize,
}

impl MasqueradeReport {
    /// Time (seconds) by which at least `fraction` of attackers have been
    /// de-authenticated; `None` if never reached within the horizon.
    pub fn detection_time(&self, fraction: f64) -> Option<f64> {
        self.survival
            .iter()
            .position(|&s| s <= 1.0 - fraction + 1e-9)
            .map(|k| k as f64 * self.window_secs)
    }
}

/// Runs the §V-G mimicry attack: every user takes a turn as the victim;
/// attackers are drawn from the rest of the population, watch the victim
/// (modelled by [`MimicryAttacker`]) and then use the victim's phone while
/// imitating them. A trial survives while every window so far was accepted
/// (the response module de-authenticates on the first rejection).
pub fn masquerade_experiment(cfg: &ExperimentConfig, mcfg: &MasqueradeConfig) -> MasqueradeReport {
    let population = Population::generate(cfg.num_users, cfg.seed);
    let data = collect_population_features(cfg);
    let spec = cfg.window_spec();
    let system_cfg = cfg.system_config();

    let targets: Vec<usize> = (0..cfg.num_users).collect();
    let per_victim: Vec<Vec<usize>> = parallel_map(&targets, |&victim_idx| {
        // Train the victim's deployed model (combined devices, per-context)
        // exactly the way the pipeline's training server would.
        let mut server = TrainingServer::new();
        for (i, u) in data.users.iter().enumerate() {
            if i == victim_idx {
                continue;
            }
            for ctx in UsageContext::ALL {
                server.contribute(ctx, u.features(Some(ctx), DeviceSet::Combined));
            }
        }
        let positives = [
            data.users[victim_idx].features(Some(UsageContext::Stationary), DeviceSet::Combined),
            data.users[victim_idx].features(Some(UsageContext::Moving), DeviceSet::Combined),
        ];
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xA77 ^ victim_idx as u64);
        let authenticator = server
            .train_authenticator(&positives, &system_cfg, &mut rng)
            .expect("victim model trains");

        // Run the attack trials.
        let victim = population.users()[victim_idx].clone();
        let mut survivals = Vec::with_capacity(mcfg.trials_per_victim);
        for trial in 0..mcfg.trials_per_victim {
            let mut trial_rng =
                StdRng::seed_from_u64(cfg.seed ^ 0xBAD ^ ((victim_idx * 1000 + trial) as u64));
            // Attacker: any other user, with a practised skill level.
            let attacker_idx = {
                let mut i = trial_rng.random_range(0..cfg.num_users - 1);
                if i >= victim_idx {
                    i += 1;
                }
                i
            };
            let mimic = MimicryAttacker::with_random_skill(
                population.users()[attacker_idx].clone(),
                &mut trial_rng,
            );
            let masq = mimic.masquerade_profile(&victim, &mut trial_rng);
            let mut gen = TraceGenerator::with_config(
                masq,
                cfg.seed ^ (trial as u64) << 4 ^ victim_idx as u64,
                cfg.generator,
            );
            // The attacker performs the victim's tasks; trials split across
            // the two coarse contexts like real usage.
            let raw_ctx = if trial % 2 == 0 {
                RawContext::SittingStanding
            } else {
                RawContext::MovingAround
            };
            gen.begin_session(raw_ctx);
            let mut survived = 0usize;
            for _ in 0..mcfg.horizon_windows {
                let w = gen.next_window(spec);
                let features = data.extractor.auth_features(&w, DeviceSet::Combined);
                let decision = authenticator.authenticate(raw_ctx.coarse(), &features);
                if decision.accepted {
                    survived += 1;
                } else {
                    break;
                }
            }
            survivals.push(survived);
        }
        survivals
    });

    let all: Vec<usize> = per_victim.into_iter().flatten().collect();
    let trials = all.len();
    let survival: Vec<f64> = (0..=mcfg.horizon_windows)
        .map(|k| all.iter().filter(|&&s| s >= k).count() as f64 / trials.max(1) as f64)
        .collect();
    MasqueradeReport {
        survival,
        window_secs: cfg.window_secs,
        trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn survival_is_monotone_and_starts_at_one() {
        let mut cfg = ExperimentConfig::quick();
        cfg.num_users = 4;
        cfg.windows_per_context = 40;
        cfg.data_size = 60;
        let mcfg = MasqueradeConfig {
            trials_per_victim: 4,
            horizon_windows: 5,
        };
        let report = masquerade_experiment(&cfg, &mcfg);
        assert_eq!(report.trials, 16);
        assert_eq!(report.survival.len(), 6);
        assert_eq!(report.survival[0], 1.0);
        for pair in report.survival.windows(2) {
            assert!(pair[0] >= pair[1], "survival must be non-increasing");
        }
    }

    #[test]
    fn most_attackers_rejected_within_a_few_windows() {
        let mut cfg = ExperimentConfig::quick();
        cfg.num_users = 5;
        cfg.windows_per_context = 50;
        cfg.data_size = 80;
        let mcfg = MasqueradeConfig {
            trials_per_victim: 8,
            horizon_windows: 6,
        };
        let report = masquerade_experiment(&cfg, &mcfg);
        // Shape check (full calibration asserted at paper scale in the
        // integration tests): well under half survive three windows.
        assert!(
            report.survival[3] < 0.5,
            "survival at 3 windows {}",
            report.survival[3]
        );
    }

    #[test]
    fn detection_time_reads_the_curve() {
        let report = MasqueradeReport {
            survival: vec![1.0, 0.4, 0.1, 0.0],
            window_secs: 6.0,
            trials: 10,
        };
        assert_eq!(report.detection_time(0.6), Some(6.0));
        assert_eq!(report.detection_time(0.9), Some(12.0));
        assert_eq!(report.detection_time(1.0), Some(18.0));
        let never = MasqueradeReport {
            survival: vec![1.0, 0.9],
            window_secs: 6.0,
            trials: 10,
        };
        assert_eq!(never.detection_time(0.5), None);
    }
}
