//! Behavioural-drift and automatic-retraining evaluation — Figure 7 (§V-I).

use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use smarteryou_sensors::{GeneratorConfig, Population, RawContext, TraceGenerator};

use super::ExperimentConfig;
use crate::context_detect::{ContextDetector, ContextDetectorConfig};
use crate::features::{DeviceSet, FeatureExtractor};
use crate::pipeline::{ProcessOutcome, SmarterYou, SystemEvent, SystemPhase};
use crate::response::ResponsePolicy;
use crate::retrain::RetrainPolicy;
use crate::server::TrainingServer;

/// Result of the drift/retraining simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftReport {
    /// Mean confidence score per simulated day — the Figure 7 series.
    pub daily_confidence: Vec<(u32, f64)>,
    /// Day of the first automatic retrain, if one was triggered.
    pub retrain_day: Option<f64>,
    /// All pipeline events.
    pub events: Vec<SystemEvent>,
}

/// Simulates `days` of post-enrollment usage for one owner whose behaviour
/// drifts at `drift_scale` × the nominal rate, running the full SmarterYou
/// pipeline (context detection, per-context KRR, confidence tracking,
/// automatic retraining).
///
/// With `drift_scale ≈ 2` (a user whose habits change noticeably within a
/// week — the case Figure 7 illustrates) the confidence score sags below
/// ε = 0.2 around the end of the first week, triggers a retrain, and
/// recovers.
pub fn drift_experiment(cfg: &ExperimentConfig, days: usize, drift_scale: f64) -> DriftReport {
    let population = Population::generate(cfg.num_users, cfg.seed);
    let owner = population.users()[0].clone();
    let spec = cfg.window_spec();
    let extractor = FeatureExtractor::paper_default(cfg.sample_rate);

    // --- context detector + anonymized pool from the *other* users -------
    let mut ctx_features = Vec::new();
    let mut ctx_labels = Vec::new();
    let mut server = TrainingServer::new();
    for user in &population.users()[1..] {
        let mut gen = TraceGenerator::with_config(user.clone(), cfg.seed ^ 0xD1, cfg.generator);
        for raw in [
            RawContext::SittingStanding,
            RawContext::MovingAround,
            RawContext::OnTable,
        ] {
            let windows = gen.generate_windows(raw, spec, 30);
            for w in &windows {
                ctx_features.push(extractor.context_features(w));
                ctx_labels.push(raw.coarse());
            }
            server.contribute(
                raw.coarse(),
                windows
                    .iter()
                    .map(|w| extractor.auth_features(w, DeviceSet::Combined)),
            );
        }
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xD2);
    let detector = ContextDetector::train(
        extractor,
        &ctx_features,
        &ctx_labels,
        ContextDetectorConfig::default(),
        &mut rng,
    )
    .expect("context detector trains");

    // --- the owner's pipeline --------------------------------------------
    let mut system = SmarterYou::new(
        cfg.system_config(),
        detector,
        Arc::new(Mutex::new(server)),
        cfg.seed ^ 0xD3,
    )
    .expect("valid config")
    // Figure 7 tracks the legitimate user across misclassifications, so the
    // device must not hard-lock on the occasional false reject.
    .with_response_policy(ResponsePolicy {
        rejects_to_lock: usize::MAX,
    })
    .with_retrain_policy(RetrainPolicy::default())
    // The runtime tracker keeps only a rolling window of scores; this
    // harness plots the whole run's daily series, so retain everything.
    .with_history_retention(usize::MAX);

    let owner_gen_cfg = GeneratorConfig {
        drift_scale,
        ..cfg.generator
    };
    let mut gen = TraceGenerator::with_config(owner, cfg.seed ^ 0xD4, owner_gen_cfg);

    // Enrollment first: ~800 windows is only a couple of hours of usage
    // (§V-B "about 800 measurements"), so it completes within day 0.
    let mut enroll_sessions = 0usize;
    while system.phase() == SystemPhase::Enrollment {
        assert!(
            enroll_sessions < 2000,
            "enrollment did not converge (data_size {})",
            cfg.data_size
        );
        let raw = if enroll_sessions.is_multiple_of(2) {
            RawContext::SittingStanding
        } else {
            RawContext::MovingAround
        };
        enroll_sessions += 1;
        gen.advance_days(0.002);
        gen.begin_session(raw);
        system.set_clock(gen.day());
        for _ in 0..10 {
            let w = gen.next_window(spec);
            system.process_window(&w).expect("pipeline processes");
        }
    }

    // Simulated usage: `sessions_per_day` sessions alternating contexts.
    let sessions_per_day = 10usize;
    let windows_per_session = 6usize;
    let mut retrain_day = None;
    for day in 0..days {
        for s in 0..sessions_per_day {
            gen.advance_days(1.0 / sessions_per_day as f64);
            let raw = if s % 2 == 0 {
                RawContext::SittingStanding
            } else {
                RawContext::MovingAround
            };
            gen.begin_session(raw);
            system.set_clock(day as f64 + s as f64 / sessions_per_day as f64);
            for _ in 0..windows_per_session {
                let w = gen.next_window(spec);
                if let Ok(ProcessOutcome::Decision { retrained, .. }) = system.process_window(&w) {
                    if retrained && retrain_day.is_none() {
                        retrain_day = Some(gen.day());
                    }
                }
            }
        }
    }

    DriftReport {
        daily_confidence: system.confidence_tracker().daily_medians(),
        retrain_day,
        events: system.events().to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> ExperimentConfig {
        let mut cfg = ExperimentConfig::quick();
        cfg.num_users = 4;
        cfg.data_size = 40;
        cfg
    }

    #[test]
    fn no_drift_keeps_confidence_high() {
        let mut cfg = quick_cfg();
        cfg.generator.drift_scale = 0.0;
        let report = drift_experiment(&cfg, 3, 0.0);
        assert!(report.retrain_day.is_none(), "no drift → no retrain");
        // After the enrollment day, confidence stays comfortably positive.
        let last = report.daily_confidence.last().unwrap();
        assert!(last.1 > 0.3, "day {} mean CS {}", last.0, last.1);
    }

    #[test]
    fn strong_drift_triggers_retraining_and_recovery() {
        let cfg = quick_cfg();
        let report = drift_experiment(&cfg, 14, 8.0);
        assert!(
            report.retrain_day.is_some(),
            "strong drift should trigger a retrain; daily CS: {:?}",
            report.daily_confidence
        );
        assert!(report
            .events
            .iter()
            .any(|e| matches!(e, SystemEvent::Retrained { .. })));
    }

    #[test]
    fn daily_series_covers_the_horizon() {
        let mut cfg = quick_cfg();
        cfg.generator.drift_scale = 0.5;
        let report = drift_experiment(&cfg, 4, 0.5);
        assert!(report.daily_confidence.len() >= 3);
        for (_, cs) in &report.daily_confidence {
            assert!(cs.is_finite());
        }
    }
}
