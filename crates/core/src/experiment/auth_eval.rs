//! Authentication-accuracy experiments: Table VI (algorithms), Table VII
//! (context × device ablation), Figure 4 (window-size sweep) and Figure 5
//! (training-set-size sweep).

use std::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use smarteryou_ml::{
    cross_validate, stratified_k_fold, Algorithm, BinaryClassifier, Dataset, MlError, Scaler,
};
use smarteryou_sensors::UsageContext;
use smarteryou_stats::BinaryOutcomes;

use super::data::{collect_population_features, PopulationFeatures};
use super::{parallel_map, ExperimentConfig};
use crate::config::ContextMode;
use crate::features::DeviceSet;

/// FRR / FAR / balanced accuracy of an authentication configuration — the
/// cell format of Tables I, VI and VII.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AuthPerformance {
    /// False reject rate (fraction).
    pub frr: f64,
    /// False accept rate (fraction).
    pub far: f64,
}

impl AuthPerformance {
    /// Balanced accuracy `1 − (FAR + FRR)/2`.
    pub fn accuracy(&self) -> f64 {
        1.0 - (self.far + self.frr) / 2.0
    }

    fn from_outcomes(o: &BinaryOutcomes) -> Self {
        AuthPerformance {
            frr: o.frr(),
            far: o.far(),
        }
    }
}

impl fmt::Display for AuthPerformance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FRR {:5.1}%  FAR {:5.1}%  accuracy {:5.1}%",
            100.0 * self.frr,
            100.0 * self.far,
            100.0 * self.accuracy()
        )
    }
}

/// A classifier that applies the training fold's z-score scaler before the
/// wrapped model — keeps test-fold statistics out of training.
struct ScaledModel {
    scaler: Scaler,
    inner: Box<dyn BinaryClassifier>,
}

impl BinaryClassifier for ScaledModel {
    fn decision(&self, x: &[f64]) -> f64 {
        self.inner.decision(&self.scaler.transform_vec(x))
    }

    fn num_features(&self) -> usize {
        self.scaler.num_features()
    }
}

/// Decision threshold per algorithm: the deployed KRR system runs at the
/// configured operating point (slightly accept-biased, §V-F3); the Table VI
/// baselines are evaluated at their natural zero threshold.
fn threshold_for(algorithm: Algorithm, cfg: &ExperimentConfig) -> f64 {
    match algorithm {
        Algorithm::Krr => cfg.accept_threshold,
        _ => 0.0,
    }
}

/// Builds the per-target-user dataset: the target's windows as positives
/// and a balanced, user-interleaved sample of everyone else's windows as
/// negatives (the anonymized pool of §IV-A3). `most_recent` caps both
/// classes to the latest windows when set (used by the data-size sweep).
fn build_dataset(
    data: &PopulationFeatures,
    target: usize,
    context: Option<UsageContext>,
    device: DeviceSet,
    per_class: usize,
) -> Option<Dataset> {
    let mut positives = data.users[target].features_with_days(context, device);
    // Most recent first, then cap.
    positives.sort_by(|a, b| b.0.total_cmp(&a.0));
    positives.truncate(per_class);
    let positives: Vec<Vec<f64>> = positives.into_iter().map(|(_, f)| f).collect();

    // Interleave other users round-robin so negatives cover the population
    // evenly (up to per_class windows).
    let others: Vec<Vec<Vec<f64>>> = data
        .users
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != target)
        .map(|(_, u)| u.features(context, device))
        .collect();
    let mut negatives = Vec::with_capacity(per_class);
    let mut idx = 0usize;
    'outer: loop {
        let mut any = false;
        for other in &others {
            if let Some(f) = other.get(idx) {
                negatives.push(f.clone());
                any = true;
                if negatives.len() == per_class {
                    break 'outer;
                }
            }
        }
        if !any {
            break;
        }
        idx += 1;
    }
    Dataset::from_classes(&positives, &negatives).ok()
}

/// Cross-validates one dataset with the given algorithm, pooling outcomes
/// over `cfg.repeats` repetitions.
fn cross_validate_dataset(
    dataset: &Dataset,
    algorithm: Algorithm,
    cfg: &ExperimentConfig,
    seed: u64,
) -> BinaryOutcomes {
    let threshold = threshold_for(algorithm, cfg);
    let mut pooled = BinaryOutcomes::default();
    for rep in 0..cfg.repeats.max(1) {
        let mut rng = StdRng::seed_from_u64(seed ^ (rep as u64).wrapping_mul(0x9E37));
        let folds = stratified_k_fold(dataset.y(), cfg.folds, &mut rng);
        let mut fit_rng = StdRng::seed_from_u64(seed ^ 0xF17 ^ rep as u64);
        let report = cross_validate(dataset, &folds, threshold, |train| {
            let scaler = Scaler::fit(train.x());
            let xs = scaler.transform(train.x());
            let inner = algorithm.fit(&xs, train.y(), &mut fit_rng)?;
            Ok(Box::new(ScaledModel { scaler, inner }) as Box<dyn BinaryClassifier>)
        })
        .unwrap_or_else(|e: MlError| panic!("cross-validation failed: {e}"));
        pooled.merge(&report.aggregate);
    }
    pooled
}

/// Evaluates one authentication configuration over the whole population
/// (every user takes a turn as the legitimate owner; outcomes are pooled).
///
/// This is the generator of Table VII cells (vary `device` × `mode` with
/// [`Algorithm::Krr`]) and Table VI rows (vary `algorithm` at the deployed
/// `Combined` + `PerContext` configuration).
pub fn evaluate_authentication(
    data: &PopulationFeatures,
    cfg: &ExperimentConfig,
    device: DeviceSet,
    mode: ContextMode,
    algorithm: Algorithm,
) -> AuthPerformance {
    let per_class = cfg.data_size / 2;
    let targets: Vec<usize> = (0..data.users.len()).collect();
    let outcomes = parallel_map(&targets, |&target| {
        let mut pooled = BinaryOutcomes::default();
        let contexts: &[Option<UsageContext>] = match mode {
            ContextMode::Unified => &[None],
            ContextMode::PerContext => {
                &[Some(UsageContext::Stationary), Some(UsageContext::Moving)]
            }
        };
        for (c, context) in contexts.iter().enumerate() {
            if let Some(dataset) = build_dataset(data, target, *context, device, per_class) {
                let seed = cfg.seed ^ ((target as u64) << 8) ^ c as u64;
                pooled.merge(&cross_validate_dataset(&dataset, algorithm, cfg, seed));
            }
        }
        pooled
    });
    let mut total = BinaryOutcomes::default();
    for o in &outcomes {
        total.merge(o);
    }
    AuthPerformance::from_outcomes(&total)
}

/// Cross-validated performance with a single user as the legitimate owner —
/// the per-user breakdown behind the pooled numbers (diagnostics).
pub fn evaluate_single_user(
    data: &PopulationFeatures,
    cfg: &ExperimentConfig,
    device: DeviceSet,
    mode: ContextMode,
    algorithm: Algorithm,
    target: usize,
) -> AuthPerformance {
    let per_class = cfg.data_size / 2;
    let mut pooled = BinaryOutcomes::default();
    let contexts: &[Option<UsageContext>] = match mode {
        ContextMode::Unified => &[None],
        ContextMode::PerContext => &[Some(UsageContext::Stationary), Some(UsageContext::Moving)],
    };
    for (c, context) in contexts.iter().enumerate() {
        if let Some(dataset) = build_dataset(data, target, *context, device, per_class) {
            let seed = cfg.seed ^ ((target as u64) << 8) ^ c as u64;
            pooled.merge(&cross_validate_dataset(&dataset, algorithm, cfg, seed));
        }
    }
    AuthPerformance::from_outcomes(&pooled)
}

/// Like [`evaluate_authentication`] with per-context models, but reports
/// the two contexts separately — the split Figure 4 plots.
pub fn evaluate_per_context(
    data: &PopulationFeatures,
    cfg: &ExperimentConfig,
    device: DeviceSet,
) -> [AuthPerformance; 2] {
    let per_class = cfg.data_size / 2;
    let targets: Vec<usize> = (0..data.users.len()).collect();
    let outcomes = parallel_map(&targets, |&target| {
        let mut per_ctx = [BinaryOutcomes::default(), BinaryOutcomes::default()];
        for ctx in UsageContext::ALL {
            if let Some(dataset) = build_dataset(data, target, Some(ctx), device, per_class) {
                let seed = cfg.seed ^ ((target as u64) << 8) ^ ctx.index() as u64;
                per_ctx[ctx.index()] = cross_validate_dataset(&dataset, Algorithm::Krr, cfg, seed);
            }
        }
        per_ctx
    });
    let mut total = [BinaryOutcomes::default(), BinaryOutcomes::default()];
    for o in &outcomes {
        total[0].merge(&o[0]);
        total[1].merge(&o[1]);
    }
    [
        AuthPerformance::from_outcomes(&total[0]),
        AuthPerformance::from_outcomes(&total[1]),
    ]
}

/// One point of the Figure 4 sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowSizePoint {
    /// Window length in seconds.
    pub window_secs: f64,
    /// Per-context performance for each of [`DeviceSet::ALL`]
    /// (`[context][device]`, contexts in [`UsageContext::ALL`] order).
    pub performance: [[AuthPerformance; 3]; 2],
}

/// Figure 4: FRR/FAR versus window size, per context and device set.
/// Regenerates the population at every window size (window length changes
/// the features themselves).
pub fn window_size_sweep(cfg: &ExperimentConfig, sizes: &[f64]) -> Vec<WindowSizePoint> {
    sizes
        .iter()
        .map(|&secs| {
            let mut sweep_cfg = cfg.clone();
            sweep_cfg.window_secs = secs;
            let data = collect_population_features(&sweep_cfg);
            let mut performance = [[AuthPerformance { frr: 0.0, far: 0.0 }; 3]; 2];
            for (d, device) in DeviceSet::ALL.iter().enumerate() {
                let per_ctx = evaluate_per_context(&data, &sweep_cfg, *device);
                performance[0][d] = per_ctx[0];
                performance[1][d] = per_ctx[1];
            }
            WindowSizePoint {
                window_secs: secs,
                performance,
            }
        })
        .collect()
}

/// One point of the Figure 5 sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataSizePoint {
    /// Training-set size (windows, both classes).
    pub data_size: usize,
    /// `[context][device]` accuracy, contexts in [`UsageContext::ALL`]
    /// order, devices in [`DeviceSet::ALL`] order.
    pub performance: [[AuthPerformance; 3]; 2],
}

/// Figure 5: accuracy versus training-set size. Uses the *most recent*
/// `n/2` windows per class, so growing `n` reaches further into the past —
/// with behavioural drift, training sets beyond the drift horizon get
/// stale, reproducing the paper's decline past ≈800.
///
/// `cfg.windows_per_context` must cover `max(sizes)/2`.
pub fn data_size_sweep(cfg: &ExperimentConfig, sizes: &[usize]) -> Vec<DataSizePoint> {
    let data = collect_population_features(cfg);
    sizes
        .iter()
        .map(|&n| {
            let mut point_cfg = cfg.clone();
            point_cfg.data_size = n;
            let mut performance = [[AuthPerformance { frr: 0.0, far: 0.0 }; 3]; 2];
            for (d, device) in DeviceSet::ALL.iter().enumerate() {
                let per_ctx = evaluate_per_context(&data, &point_cfg, *device);
                performance[0][d] = per_ctx[0];
                performance[1][d] = per_ctx[1];
            }
            DataSizePoint {
                data_size: n,
                performance,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_data() -> (ExperimentConfig, PopulationFeatures) {
        let mut cfg = ExperimentConfig::quick();
        cfg.num_users = 5;
        cfg.windows_per_context = 50;
        cfg.data_size = 60;
        let data = collect_population_features(&cfg);
        (cfg, data)
    }

    #[test]
    fn deployed_configuration_beats_chance_by_a_wide_margin() {
        let (cfg, data) = quick_data();
        let perf = evaluate_authentication(
            &data,
            &cfg,
            DeviceSet::Combined,
            ContextMode::PerContext,
            Algorithm::Krr,
        );
        assert!(perf.accuracy() > 0.8, "accuracy {}", perf.accuracy());
        assert!(perf.frr < 0.3 && perf.far < 0.3);
    }

    #[test]
    fn per_context_split_reports_both_contexts() {
        let (cfg, data) = quick_data();
        let per_ctx = evaluate_per_context(&data, &cfg, DeviceSet::PhoneOnly);
        for p in per_ctx {
            assert!(p.frr.is_finite() && p.far.is_finite());
            assert!(p.accuracy() > 0.6);
        }
    }

    #[test]
    fn display_formats_percentages() {
        let p = AuthPerformance {
            frr: 0.009,
            far: 0.028,
        };
        let s = format!("{p}");
        assert!(s.contains("0.9"));
        assert!(s.contains("2.8"));
        assert!((p.accuracy() - 0.9815).abs() < 1e-9);
    }

    #[test]
    fn dataset_builder_balances_classes() {
        let (_, data) = quick_data();
        let d = build_dataset(
            &data,
            0,
            Some(UsageContext::Stationary),
            DeviceSet::Combined,
            30,
        )
        .unwrap();
        let pos = d.y().iter().filter(|&&l| l > 0.0).count();
        let neg = d.y().len() - pos;
        assert_eq!(pos, 30);
        assert_eq!(neg, 30);
    }
}
