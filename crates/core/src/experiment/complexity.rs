//! KRR complexity measurement — §V-H1: the primal form (Eq. 7, O(M³-ish))
//! versus the dual form (Eq. 6, O(N³-ish)) at the deployed scale
//! N = 720 training windows, M = 28 features.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use smarteryou_ml::{Algorithm, BinaryClassifier, KernelRidge, KrrSolver, Scaler};
use smarteryou_sensors::UsageContext;

use super::data::PopulationFeatures;
use super::ExperimentConfig;
use crate::features::DeviceSet;

/// Timing results of the complexity experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComplexityReport {
    /// Training samples used (the paper's N×9/10 = 720).
    pub n: usize,
    /// Feature dimension (the paper's M = 28).
    pub m: usize,
    /// Median primal-form training time (Eq. 7).
    pub train_primal: Duration,
    /// Median dual-form training time (Eq. 6).
    pub train_dual: Duration,
    /// Median single-window classification time.
    pub test_time: Duration,
    /// Median SVM (SMO) training time on the same data — the baseline whose
    /// cost §V-F2 contrasts against KRR.
    pub train_svm: Duration,
}

impl ComplexityReport {
    /// Primal speed-up factor over the dual form.
    pub fn speedup(&self) -> f64 {
        self.train_dual.as_secs_f64() / self.train_primal.as_secs_f64().max(1e-12)
    }
}

fn median_duration(mut samples: Vec<Duration>) -> Duration {
    samples.sort();
    samples[samples.len() / 2]
}

/// Times the two KRR formulations (and the SVM baseline) on a real
/// user-vs-rest dataset drawn from `data`, at the deployed N and M.
pub fn complexity_experiment(
    data: &PopulationFeatures,
    cfg: &ExperimentConfig,
) -> ComplexityReport {
    // Build one representative training set: user 0, stationary context,
    // 9/10 of data_size (the CV training share).
    let per_class = cfg.data_size / 2;
    let positives = data.users[0].features(Some(UsageContext::Stationary), DeviceSet::Combined);
    let mut negatives = Vec::new();
    'fill: for u in &data.users[1..] {
        for f in u.features(Some(UsageContext::Stationary), DeviceSet::Combined) {
            negatives.push(f);
            if negatives.len() >= per_class {
                break 'fill;
            }
        }
    }
    let take = |v: &[Vec<f64>], n: usize| v.iter().take(n).cloned().collect::<Vec<_>>();
    let n_train = (cfg.data_size * 9 / 10).min(positives.len() + negatives.len());
    let per_side = n_train / 2;
    let dataset = smarteryou_ml::Dataset::from_classes(
        &take(&positives, per_side),
        &take(&negatives, per_side),
    )
    .expect("complexity dataset");
    let scaler = Scaler::fit(dataset.x());
    let xs = scaler.transform(dataset.x());
    let y = dataset.y();

    let time_fit = |solver: KrrSolver, reps: usize| {
        let times: Vec<Duration> = (0..reps)
            .map(|_| {
                let t0 = Instant::now();
                let model = KernelRidge::new(cfg.rho)
                    .with_solver(solver)
                    .fit(&xs, y)
                    .expect("krr fits");
                std::hint::black_box(&model);
                t0.elapsed()
            })
            .collect();
        median_duration(times)
    };
    let train_primal = time_fit(KrrSolver::Primal, 15);
    let train_dual = time_fit(KrrSolver::Dual, 5);

    let train_svm = {
        let times: Vec<Duration> = (0..3)
            .map(|i| {
                let mut rng = StdRng::seed_from_u64(cfg.seed ^ i);
                let t0 = Instant::now();
                let model = Algorithm::Svm.fit(&xs, y, &mut rng).expect("svm fits");
                std::hint::black_box(&model);
                t0.elapsed()
            })
            .collect();
        median_duration(times)
    };

    // Per-window classification latency.
    let model = KernelRidge::new(cfg.rho).fit(&xs, y).expect("krr fits");
    let probe = xs.row(0).to_vec();
    let test_time = {
        let reps = 1000;
        let t0 = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(model.decision(std::hint::black_box(&probe)));
        }
        t0.elapsed() / reps
    };

    ComplexityReport {
        n: xs.rows(),
        m: xs.cols(),
        train_primal,
        train_dual,
        test_time,
        train_svm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::collect_population_features;

    #[test]
    fn primal_is_faster_than_dual_at_paper_scale_ratio() {
        // Shrunk version: N = 180, M = 28 still shows the asymmetry.
        let mut cfg = ExperimentConfig::quick();
        cfg.num_users = 5;
        cfg.windows_per_context = 110;
        cfg.data_size = 200;
        let data = collect_population_features(&cfg);
        let report = complexity_experiment(&data, &cfg);
        assert_eq!(report.m, 28);
        assert!(report.n >= 150, "n = {}", report.n);
        assert!(
            report.speedup() > 2.0,
            "primal {:?} vs dual {:?}",
            report.train_primal,
            report.train_dual
        );
        // Classification is far below the 6-second window budget.
        assert!(report.test_time < Duration::from_millis(1));
    }
}
