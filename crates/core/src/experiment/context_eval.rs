//! Context-detection evaluation — Table V (§V-E).

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use smarteryou_linalg::Matrix;
use smarteryou_ml::{RandomForest, RandomForestModel};
use smarteryou_sensors::{Population, RawContext, TraceGenerator, UsageContext};
use smarteryou_stats::ConfusionMatrix;

use super::{parallel_map, ExperimentConfig};
use crate::features::FeatureExtractor;

/// Result of the context-detection experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ContextDetectionReport {
    /// Two-context confusion matrix (the deployed detector, Table V).
    pub coarse: ConfusionMatrix,
    /// Four-raw-context confusion matrix (the rejected design: §V-E
    /// explains that the stationary-like contexts confuse each other).
    pub raw: ConfusionMatrix,
    /// Mean single-window detection latency (the paper reports < 3 ms).
    pub detect_time: Duration,
}

impl ContextDetectionReport {
    /// Total off-diagonal rate among the three stationary-like raw contexts
    /// — the confusion that motivated collapsing them.
    pub fn stationary_like_confusion(&self) -> f64 {
        let idx = [
            RawContext::SittingStanding.index(),
            RawContext::OnTable.index(),
            RawContext::Vehicle.index(),
        ];
        let mut wrong = 0.0;
        let mut n = 0.0f64;
        for &i in &idx {
            for &j in &idx {
                if i != j {
                    let r = self.raw.row_rate(i, j);
                    if r.is_finite() {
                        wrong += r;
                        n += 1.0;
                    }
                }
            }
        }
        wrong / n.max(1.0)
    }
}

/// Lab-condition recordings: per user, per raw context, `sessions` sessions
/// of `windows_per_session` windows (§V-E: 20 minutes per context under
/// controlled conditions).
fn lab_features(
    cfg: &ExperimentConfig,
    sessions: usize,
    windows_per_session: usize,
) -> Vec<Vec<(RawContext, Vec<f64>)>> {
    let population = Population::generate(cfg.num_users, cfg.seed);
    let extractor = FeatureExtractor::paper_default(cfg.sample_rate);
    let spec = cfg.window_spec();
    parallel_map(population.users(), |profile| {
        let mut gen = TraceGenerator::with_config(profile.clone(), cfg.seed ^ 0xC4, cfg.generator);
        let mut out = Vec::new();
        for raw in RawContext::ALL {
            for _ in 0..sessions {
                gen.advance_days(0.05);
                gen.begin_session(raw);
                for _ in 0..windows_per_session {
                    let w = gen.next_window(spec);
                    out.push((raw, extractor.context_features(&w)));
                }
            }
        }
        out
    })
}

/// Trains and evaluates a forest over user-grouped folds: the detector
/// tested on a user was trained only on *other* users' windows
/// (user-agnostic, as deployed).
fn user_agnostic_cv(
    per_user: &[Vec<(RawContext, Vec<f64>)>],
    folds: usize,
    classes: usize,
    label_of: impl Fn(RawContext) -> usize + Sync,
    labels: Vec<String>,
    seed: u64,
) -> (ConfusionMatrix, Duration) {
    let n_users = per_user.len();
    let folds = folds.min(n_users);
    let fold_results: Vec<(ConfusionMatrix, Duration, u32)> =
        parallel_map(&(0..folds).collect::<Vec<_>>(), |&fold| {
            // Train on users outside the fold.
            let mut train_rows: Vec<&[f64]> = Vec::new();
            let mut train_y: Vec<usize> = Vec::new();
            for (u, windows) in per_user.iter().enumerate() {
                if u % folds == fold {
                    continue;
                }
                for (raw, f) in windows {
                    train_rows.push(f);
                    train_y.push(label_of(*raw));
                }
            }
            let x = Matrix::from_rows(&train_rows).expect("uniform width");
            let mut rng = StdRng::seed_from_u64(seed ^ fold as u64);
            let forest: RandomForestModel = RandomForest::new(50)
                .with_max_depth(10)
                .fit(&x, &train_y, classes, &mut rng)
                .expect("forest trains");

            // Test on the fold's users.
            let mut cm = ConfusionMatrix::new(labels.clone());
            let mut elapsed = Duration::ZERO;
            let mut count = 0u32;
            for (u, windows) in per_user.iter().enumerate() {
                if u % folds != fold {
                    continue;
                }
                for (raw, f) in windows {
                    let t0 = Instant::now();
                    let pred = forest.predict(f);
                    elapsed += t0.elapsed();
                    count += 1;
                    cm.record(label_of(*raw), pred);
                }
            }
            (cm, elapsed, count)
        });
    let mut total = ConfusionMatrix::new(labels);
    let mut elapsed = Duration::ZERO;
    let mut count = 0u32;
    for (cm, e, c) in fold_results {
        total.merge(&cm);
        elapsed += e;
        count += c;
    }
    (total, elapsed / count.max(1))
}

/// Table V: trains the user-agnostic context detector under lab conditions
/// and reports both the deployed two-context confusion matrix and the
/// rejected four-context one.
pub fn context_detection_experiment(cfg: &ExperimentConfig) -> ContextDetectionReport {
    // ~20 minutes per context at 6 s windows ≈ 200 windows; scale with the
    // experiment size but stay meaningful for quick configs.
    let sessions = 5;
    let windows_per_session = (cfg.windows_per_context / 10).clamp(4, 40);
    let per_user = lab_features(cfg, sessions, windows_per_session);

    let (coarse, detect_time) = user_agnostic_cv(
        &per_user,
        cfg.folds,
        UsageContext::ALL.len(),
        |raw| raw.coarse().index(),
        UsageContext::ALL
            .iter()
            .map(|c| c.name().to_string())
            .collect(),
        cfg.seed ^ 0xC0A,
    );
    let (raw, _) = user_agnostic_cv(
        &per_user,
        cfg.folds,
        RawContext::ALL.len(),
        |raw| raw.index(),
        RawContext::ALL
            .iter()
            .map(|c| c.name().to_string())
            .collect(),
        cfg.seed ^ 0xC0B,
    );
    ContextDetectionReport {
        coarse,
        raw,
        detect_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_report() -> ContextDetectionReport {
        let mut cfg = ExperimentConfig::quick();
        cfg.num_users = 6;
        cfg.folds = 3;
        context_detection_experiment(&cfg)
    }

    #[test]
    fn coarse_detection_is_highly_accurate() {
        let report = quick_report();
        assert!(
            report.coarse.accuracy() > 0.93,
            "coarse accuracy {}",
            report.coarse.accuracy()
        );
    }

    #[test]
    fn stationary_like_contexts_confuse_each_other() {
        // §V-E's observation: the three stationary-like raw contexts are
        // mutually confusable, which is why the deployed system collapses
        // them. The off-diagonal rate inside the stationary block must be
        // clearly worse than the deployed two-context error rate.
        let report = quick_report();
        let coarse_error = 1.0 - report.coarse.accuracy();
        assert!(
            report.stationary_like_confusion() > 0.01,
            "stationary-like confusion {}",
            report.stationary_like_confusion()
        );
        assert!(
            report.stationary_like_confusion() > coarse_error / 2.0,
            "stationary-like confusion {} vs coarse error {}",
            report.stationary_like_confusion(),
            coarse_error
        );
    }

    #[test]
    fn detection_is_fast() {
        let report = quick_report();
        assert!(
            report.detect_time < Duration::from_millis(3),
            "detect time {:?}",
            report.detect_time
        );
    }
}
