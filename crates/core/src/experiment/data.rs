//! Free-form data collection: simulates the §V-A study (N users carrying
//! both devices for two weeks) and reduces every window to its combined
//! 28-dimensional authentication feature vector immediately, so experiments
//! never hold raw sensor streams for the whole population.

use serde::{Deserialize, Serialize};

use smarteryou_sensors::{RawContext, TraceGenerator, UsageContext, UserId};

use super::{parallel_map, ExperimentConfig};
use crate::features::{DeviceSet, FeatureExtractor};

/// One user's collected windows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserFeatureData {
    /// Who the windows belong to.
    pub user: UserId,
    /// `(day, coarse context, combined feature vector)` in chronological
    /// order. The combined vector is `[phone(14), watch(14)]`; use
    /// [`project_features`] for device ablations.
    pub windows: Vec<(f64, UsageContext, Vec<f64>)>,
}

impl UserFeatureData {
    /// Feature vectors matching `context` (all when `None`), projected onto
    /// `device`, in chronological order.
    pub fn features(&self, context: Option<UsageContext>, device: DeviceSet) -> Vec<Vec<f64>> {
        self.windows
            .iter()
            .filter(|(_, c, _)| context.is_none_or(|want| *c == want))
            .map(|(_, _, f)| project_features(f, device))
            .collect()
    }

    /// Like [`UserFeatureData::features`] but keeps the day stamp.
    pub fn features_with_days(
        &self,
        context: Option<UsageContext>,
        device: DeviceSet,
    ) -> Vec<(f64, Vec<f64>)> {
        self.windows
            .iter()
            .filter(|(_, c, _)| context.is_none_or(|want| *c == want))
            .map(|(d, _, f)| (*d, project_features(f, device)))
            .collect()
    }
}

/// The whole population's collected features.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopulationFeatures {
    /// Extractor the features were computed with (defines layout).
    pub extractor: FeatureExtractor,
    /// Per-user data, indexed by `UserId`.
    pub users: Vec<UserFeatureData>,
}

impl PopulationFeatures {
    /// Number of users.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// True when no users were collected.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }
}

/// Projects a combined `[phone, watch]` feature vector onto a device
/// ablation.
///
/// # Panics
///
/// Panics if the vector length is odd (not a phone+watch concatenation).
pub fn project_features(combined: &[f64], device: DeviceSet) -> Vec<f64> {
    let half = combined.len() / 2;
    assert_eq!(half * 2, combined.len(), "expected [phone, watch] layout");
    match device {
        DeviceSet::PhoneOnly => combined[..half].to_vec(),
        DeviceSet::WatchOnly => combined[half..].to_vec(),
        DeviceSet::Combined => combined.to_vec(),
    }
}

/// Simulates the §V-A collection for the whole population (parallel over
/// users): every user contributes at least `windows_per_context` windows of
/// each coarse context, spread over `cfg.days` days of drifting behaviour
/// and changing sessions.
pub fn collect_population_features(cfg: &ExperimentConfig) -> PopulationFeatures {
    let population = smarteryou_sensors::Population::generate(cfg.num_users, cfg.seed);
    let extractor = FeatureExtractor::paper_default(cfg.sample_rate);
    let spec = cfg.window_spec();

    let users = parallel_map(population.users(), |profile| {
        let mut gen =
            TraceGenerator::with_config(profile.clone(), cfg.seed ^ 0x5EED, cfg.generator);
        // Session plan: round-robin over contexts so both coarse classes
        // fill evenly; stationary-like sessions rotate through the three
        // stationary raw contexts the way free-form usage would.
        // Mix mirrors free-form usage: mostly seated in-hand use, some
        // on-table typing, occasional transit. (Vehicle sessions bury the
        // behavioural signal under cabin vibration, so their share matters:
        // 1 in 10 stationary sessions.)
        const PLAN: [RawContext; 20] = [
            RawContext::SittingStanding,
            RawContext::MovingAround,
            RawContext::OnTable,
            RawContext::MovingAround,
            RawContext::SittingStanding,
            RawContext::MovingAround,
            RawContext::SittingStanding,
            RawContext::MovingAround,
            RawContext::OnTable,
            RawContext::MovingAround,
            RawContext::SittingStanding,
            RawContext::MovingAround,
            RawContext::SittingStanding,
            RawContext::MovingAround,
            RawContext::OnTable,
            RawContext::MovingAround,
            RawContext::SittingStanding,
            RawContext::MovingAround,
            RawContext::Vehicle,
            RawContext::MovingAround,
        ];
        let windows_per_session = 8usize;
        // 10 stationary + 10 moving sessions per plan cycle; sessions needed
        // to fill both quotas, plus slack.
        let sessions_needed = (cfg.windows_per_context as f64 / (10.0 * windows_per_session as f64)
            * 21.0)
            .ceil() as usize;
        let day_step = cfg.days / sessions_needed.max(1) as f64;

        let mut windows = Vec::with_capacity(2 * cfg.windows_per_context);
        let mut counts = [0usize; 2];
        let mut session = 0usize;
        while (counts[0] < cfg.windows_per_context || counts[1] < cfg.windows_per_context)
            && session < sessions_needed * 3
        {
            let ctx = PLAN[session % PLAN.len()];
            session += 1;
            gen.advance_days(day_step);
            let coarse = ctx.coarse();
            if counts[coarse.index()] >= cfg.windows_per_context {
                continue;
            }
            gen.begin_session(ctx);
            let take = windows_per_session.min(cfg.windows_per_context - counts[coarse.index()]);
            for _ in 0..take {
                let w = gen.next_window(spec);
                let f = extractor.auth_features(&w, DeviceSet::Combined);
                windows.push((gen.day(), coarse, f));
                counts[coarse.index()] += 1;
            }
        }
        UserFeatureData {
            user: profile.id,
            windows,
        }
    });

    PopulationFeatures { extractor, users }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_data() -> PopulationFeatures {
        let mut cfg = ExperimentConfig::quick();
        cfg.num_users = 3;
        cfg.windows_per_context = 20;
        collect_population_features(&cfg)
    }

    #[test]
    fn collection_fills_both_context_quotas() {
        let data = quick_data();
        assert_eq!(data.len(), 3);
        for u in &data.users {
            let st = u.features(Some(UsageContext::Stationary), DeviceSet::Combined);
            let mv = u.features(Some(UsageContext::Moving), DeviceSet::Combined);
            assert_eq!(st.len(), 20, "stationary quota");
            assert_eq!(mv.len(), 20, "moving quota");
            assert!(st.iter().all(|f| f.len() == 28));
        }
    }

    #[test]
    fn windows_are_chronological_and_span_days() {
        let data = quick_data();
        let u = &data.users[0];
        for pair in u.windows.windows(2) {
            assert!(pair[0].0 <= pair[1].0);
        }
        let first = u.windows.first().unwrap().0;
        let last = u.windows.last().unwrap().0;
        assert!(last - first > 1.0, "collection spans multiple days");
    }

    #[test]
    fn projection_slices_devices() {
        let combined: Vec<f64> = (0..28).map(|i| i as f64).collect();
        assert_eq!(project_features(&combined, DeviceSet::PhoneOnly).len(), 14);
        assert_eq!(project_features(&combined, DeviceSet::WatchOnly)[0], 14.0);
        assert_eq!(project_features(&combined, DeviceSet::Combined).len(), 28);
    }

    #[test]
    fn features_with_days_aligns() {
        let data = quick_data();
        let u = &data.users[1];
        let with_days = u.features_with_days(None, DeviceSet::PhoneOnly);
        assert_eq!(with_days.len(), u.windows.len());
        assert_eq!(with_days[0].1.len(), 14);
    }
}
