use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::demographics::{assign_demographics, AgeBand, Gender};
use crate::profile::{UserId, UserProfile};

/// A simulated study population — the stand-in for the paper's 35 volunteers
/// (§V-A, Figure 2).
///
/// # Example
///
/// ```
/// use smarteryou_sensors::Population;
///
/// let population = Population::generate(35, 42);
/// assert_eq!(population.len(), 35);
/// let (female, male) = population.gender_counts();
/// assert_eq!((female, male), (16, 19)); // Figure 2
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Population {
    seed: u64,
    users: Vec<UserProfile>,
}

impl Population {
    /// The paper's study size.
    pub const PAPER_SIZE: usize = 35;

    /// Generates `n` users deterministically from `seed`, with demographics
    /// matching Figure 2's marginals.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn generate(n: usize, seed: u64) -> Self {
        assert!(n > 0, "population must be non-empty");
        let mut rng = StdRng::seed_from_u64(seed ^ 0xDEADBEEF);
        let demographics = assign_demographics(n, &mut rng);
        let users = demographics
            .into_iter()
            .enumerate()
            .map(|(i, demo)| UserProfile::generate(UserId(i), demo, seed))
            .collect();
        Population { seed, users }
    }

    /// Number of participants.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// True when the population is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// Seed used to generate the population.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// All user profiles, indexed by `UserId`.
    pub fn users(&self) -> &[UserProfile] {
        &self.users
    }

    /// One profile by id; `None` when out of range.
    pub fn user(&self, id: UserId) -> Option<&UserProfile> {
        self.users.get(id.0)
    }

    /// Iterates over all profiles.
    pub fn iter(&self) -> impl Iterator<Item = &UserProfile> {
        self.users.iter()
    }

    /// `(female, male)` counts — Figure 2's left chart.
    pub fn gender_counts(&self) -> (usize, usize) {
        let f = self
            .users
            .iter()
            .filter(|u| u.demographics.gender == Gender::Female)
            .count();
        (f, self.users.len() - f)
    }

    /// Participants per age band, in [`AgeBand::ALL`] order — Figure 2's
    /// right chart.
    pub fn age_histogram(&self) -> [usize; 5] {
        let mut out = [0usize; 5];
        for u in &self.users {
            let idx = AgeBand::ALL
                .iter()
                .position(|b| *b == u.demographics.age)
                .expect("band is a member");
            out[idx] += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demographics::AGE_COUNTS;

    #[test]
    fn paper_size_population_matches_figure_two() {
        let p = Population::generate(Population::PAPER_SIZE, 1);
        assert_eq!(p.gender_counts(), (16, 19));
        assert_eq!(p.age_histogram(), AGE_COUNTS);
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(Population::generate(10, 3), Population::generate(10, 3));
        assert_ne!(Population::generate(10, 3), Population::generate(10, 4));
    }

    #[test]
    fn user_lookup() {
        let p = Population::generate(5, 2);
        assert!(p.user(UserId(4)).is_some());
        assert!(p.user(UserId(5)).is_none());
        assert_eq!(p.user(UserId(2)).unwrap().id, UserId(2));
        assert_eq!(p.iter().count(), 5);
        assert!(!p.is_empty());
        assert_eq!(p.seed(), 2);
    }

    #[test]
    fn users_are_behaviourally_distinct() {
        let p = Population::generate(20, 9);
        let freqs: Vec<f64> = p.iter().map(|u| u.gait_frequency()).collect();
        let mut sorted = freqs.clone();
        sorted.sort_by(f64::total_cmp);
        sorted.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        assert_eq!(sorted.len(), 20, "no two users share an exact cadence");
    }
}
