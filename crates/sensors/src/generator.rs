use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::context::RawContext;
use crate::drift::{DriftState, DriftTarget};
use crate::profile::{BehaviorParams, UserProfile, GRAVITY};
use crate::rand_util::{gaussian, log_normal, normal, uniform};
use crate::types::{DualDeviceWindow, SensorWindow};

/// Shape of one generated window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowSpec {
    /// Samples per stream.
    pub samples: usize,
    /// Sampling rate in Hz.
    pub sample_rate: f64,
}

impl WindowSpec {
    /// A window of exactly `samples` samples at `sample_rate` Hz — the
    /// direct form used by persisted pipeline snapshots, whose FFT plan key
    /// is a sample count rather than a duration.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is zero or `sample_rate` is non-positive.
    pub fn new(samples: usize, sample_rate: f64) -> Self {
        assert!(
            samples > 0 && sample_rate > 0.0,
            "window spec must be positive"
        );
        WindowSpec {
            samples,
            sample_rate,
        }
    }

    /// A window of `secs` seconds at `rate` Hz.
    ///
    /// # Panics
    ///
    /// Panics if either argument is non-positive.
    pub fn from_seconds(secs: f64, rate: f64) -> Self {
        assert!(secs > 0.0 && rate > 0.0, "window spec must be positive");
        WindowSpec {
            samples: (secs * rate).round().max(1.0) as usize,
            sample_rate: rate,
        }
    }

    /// Window duration in seconds.
    pub fn seconds(&self) -> f64 {
        self.samples as f64 / self.sample_rate
    }
}

impl Default for WindowSpec {
    /// The paper's deployed configuration: 6 s at 50 Hz (§V-F3).
    fn default() -> Self {
        WindowSpec::from_seconds(6.0, crate::types::SAMPLE_RATE_HZ)
    }
}

/// Tunables of the synthetic-behaviour generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Global multiplier on all *within-user* variability (session posture
    /// jitter, white sensor noise, per-window frequency/intensity jitter).
    /// This is the single calibration knob that sets how much users overlap;
    /// 1.0 is calibrated to land the paper's accuracy bands.
    pub noise_scale: f64,
    /// Probability that a window contains an impulsive disturbance (bump,
    /// pickup, drop) — the heavy-tailed, high-leverage windows that hurt the
    /// unregularised baselines of Table VI.
    pub outlier_prob: f64,
    /// Multiplier on the behavioural-drift random walk (§V-I, Figure 7);
    /// 0 disables drift entirely.
    pub drift_scale: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            noise_scale: 0.4,
            outlier_prob: 0.035,
            drift_scale: 1.0,
        }
    }
}

/// Streaming generator of synchronized phone + watch sensor windows for one
/// user.
///
/// The generator models three timescales:
///
/// * **days** — behavioural drift (slow random walk on pose/gait/gesture
///   parameters), advanced with [`TraceGenerator::advance_days`];
/// * **sessions** — posture re-settling and environment changes (magnetic
///   field, lighting, vehicle motion), redrawn by
///   [`TraceGenerator::begin_session`];
/// * **windows** — per-window activity intensity, frequency jitter, white
///   sensor noise and occasional impulsive outliers.
///
/// # Example
///
/// ```
/// use smarteryou_sensors::{RawContext, TraceGenerator, UserProfile, WindowSpec};
/// # let profile = smarteryou_sensors::Population::generate(1, 7).users()[0].clone();
///
/// let mut generator = TraceGenerator::new(profile, 1234);
/// generator.begin_session(RawContext::MovingAround);
/// let window = generator.next_window(WindowSpec::default());
/// assert_eq!(window.phone.accel[0].len(), 300); // 6 s × 50 Hz
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    profile: UserProfile,
    cfg: GeneratorConfig,
    rng: StdRng,
    day: f64,
    drift: DriftState,
    drift_target: DriftTarget,
    session: SessionState,
}

/// Session-scoped state: current context, posture jitter, environment.
#[derive(Debug, Clone)]
struct SessionState {
    context: RawContext,
    /// Per-device posture jitter (pitch, roll) added to the profile pose.
    pose_jitter: [(f64, f64); 2],
    /// Per-device-axis magnetometer baseline (environmental field).
    mag_base: [[f64; 3]; 2],
    /// Per-device-axis orientation baseline (heading is session-arbitrary).
    ori_base: [[f64; 3]; 2],
    /// Session log-light level (indoor/outdoor).
    light_level: f64,
    /// Vehicle sway parameters (used in the Vehicle context).
    sway_freq: f64,
    sway_amp: f64,
    engine_freq: f64,
    engine_amp: f64,
    /// Oscillator phase seeds for this session.
    phase: [f64; 8],
}

impl TraceGenerator {
    /// Creates a generator with the default [`GeneratorConfig`].
    pub fn new(profile: UserProfile, seed: u64) -> Self {
        TraceGenerator::with_config(profile, seed, GeneratorConfig::default())
    }

    /// Creates a generator with an explicit configuration.
    pub fn with_config(profile: UserProfile, seed: u64, cfg: GeneratorConfig) -> Self {
        let mut rng = crate::profile::derive_rng(seed, profile.id, 0xA11CE);
        let session = SessionState::draw(&mut rng, RawContext::SittingStanding, &cfg);
        let drift_target = profile.drift_bias();
        TraceGenerator {
            profile,
            cfg,
            rng,
            day: 0.0,
            drift: DriftState::new(),
            drift_target,
            session,
        }
    }

    /// The user being simulated.
    pub fn profile(&self) -> &UserProfile {
        &self.profile
    }

    /// Current simulated day (fractional).
    pub fn day(&self) -> f64 {
        self.day
    }

    /// Advances simulated time, evolving behavioural drift, and starts a new
    /// session in the same context.
    ///
    /// # Panics
    ///
    /// Panics if `days` is negative or non-finite.
    pub fn advance_days(&mut self, days: f64) {
        assert!(days.is_finite() && days >= 0.0, "days must be non-negative");
        self.day += days;
        self.drift.advance(
            &mut self.rng,
            days,
            self.cfg.drift_scale,
            &self.drift_target,
        );
        let ctx = self.session.context;
        self.begin_session(ctx);
    }

    /// Starts a new usage session: re-settles posture and redraws the
    /// environment (magnetic field, lighting, vehicle motion).
    pub fn begin_session(&mut self, context: RawContext) {
        self.session = SessionState::draw(&mut self.rng, context, &self.cfg);
    }

    /// Generates the next synchronized phone + watch window in the current
    /// session.
    pub fn next_window(&mut self, spec: WindowSpec) -> DualDeviceWindow {
        // Per-window activity-intensity modulation, shared by every
        // oscillatory component of a device. This common-mode factor is
        // deliberately large: it creates the strong same-device feature
        // correlations of Table III, and it is what breaks naive Bayes in
        // Table VI — the energy features all carry the same wobble, which
        // independence-assuming likelihoods double-count, while linear
        // models cancel it through feature contrasts.
        let shared = [
            log_normal(&mut self.rng, 0.0, 0.22),
            log_normal(&mut self.rng, 0.0, 0.22),
        ];
        let outlier_device = if self.rng.random::<f64>() < self.cfg.outlier_prob {
            Some(self.rng.random_range(0..2usize))
        } else {
            None
        };
        let phone = self.device_window(0, spec, shared[0], outlier_device == Some(0));
        let watch = self.device_window(1, spec, shared[1], outlier_device == Some(1));
        DualDeviceWindow { phone, watch }
    }

    /// Convenience: starts a session in `context` and generates `count`
    /// windows.
    pub fn generate_windows(
        &mut self,
        context: RawContext,
        spec: WindowSpec,
        count: usize,
    ) -> Vec<DualDeviceWindow> {
        self.begin_session(context);
        (0..count).map(|_| self.next_window(spec)).collect()
    }

    /// Synthesizes one device's window. `dev` is 0 = phone, 1 = watch.
    fn device_window(
        &mut self,
        dev: usize,
        spec: WindowSpec,
        shared_intensity: f64,
        outlier: bool,
    ) -> SensorWindow {
        let n = spec.samples;
        let rate = spec.sample_rate;
        let ns = self.cfg.noise_scale;
        let p: &BehaviorParams = &self.profile.p;
        let drift = &self.drift;
        let ctx = self.session.context;
        let moving = ctx == RawContext::MovingAround;
        let on_table_phone = ctx == RawContext::OnTable && dev == 0;

        // --- resolve the effective pose for this window ------------------
        let (mut pitch, mut roll) = if moving {
            (
                p.pose_pitch_moving[dev] + drift.pose_pitch_moving[dev],
                p.pose_roll_moving[dev] + drift.pose_roll_moving[dev],
            )
        } else {
            (
                p.pose_pitch[dev] + drift.pose_pitch[dev],
                p.pose_roll[dev] + drift.pose_roll[dev],
            )
        };
        pitch += self.session.pose_jitter[dev].0;
        roll += self.session.pose_jitter[dev].1;
        if on_table_phone {
            // Resting flat-ish: the profile pose does not apply; a small
            // surface tilt overlaps with near-flat handheld postures, which
            // is what confuses the four-context classifier (§V-E).
            pitch = self.session.pose_jitter[dev].0 * 0.5 + 0.25;
            roll = self.session.pose_jitter[dev].1 * 0.5;
        }
        let grav = [
            GRAVITY * pitch.sin(),
            GRAVITY * roll.sin() * pitch.cos(),
            GRAVITY * pitch.cos() * roll.cos(),
        ];

        // --- oscillator banks --------------------------------------------
        let intensity = shared_intensity
            * log_normal(
                &mut self.rng,
                0.0,
                crate::profile::calibration::INTENSITY_SIGMA * ns,
            );
        let gait_freq =
            (p.gait_freq + drift.gait_freq + normal(&mut self.rng, 0.0, 0.05 * ns)).clamp(0.8, 3.0);
        let drifted_tremor = (p.tremor_freq
            + drift.tremor_freq
            + if dev == 1 {
                p.tremor_offset_watch + drift.tremor_offset_watch
            } else {
                0.0
            })
        .clamp(2.0, 8.0);
        // The watch rides the arm swing at about half the step rate.
        let swing = (p.swing_ratio + drift.swing_ratio).clamp(0.3, 0.7);
        let osc_freq = if dev == 1 {
            gait_freq * swing * 2.0
        } else {
            gait_freq
        };

        let mut accel_osc: Vec<Osc> = Vec::new();
        let mut gyro_osc: Vec<Osc> = Vec::new();
        if moving {
            let coupling = if dev == 0 {
                p.carry_mode.coupling()
            } else {
                1.0
            };
            let amp0 = p.accel_osc_amp[dev]
                * p.gait_intensity
                * coupling
                * drift.gait_amp_factor(dev)
                * intensity;
            // Left–right step asymmetry: a subharmonic line at f/2.
            let asym = (p.gait_asymmetry + drift.gait_asymmetry).clamp(0.005, 0.5);
            accel_osc.push(Osc::new(
                osc_freq * 0.5,
                rate,
                self.session.phase[7],
                amp0 * asym,
            ));
            for (h, &rel) in p.gait_harmonics.iter().enumerate() {
                let f = osc_freq * (h + 1) as f64;
                let rel = if h > 0 {
                    (rel + drift.gait_harmonics[h - 1]).max(0.02)
                } else {
                    rel
                };
                accel_osc.push(Osc::new(
                    f,
                    rate,
                    self.session.phase[h] + self.rng.random::<f64>() * 0.5,
                    amp0 * rel,
                ));
            }
            let gyro_amp = p.gyro_amp_moving[dev];
            let gyro_scale = p.gyro_scale[dev] * drift.log_gyro_scale[dev].exp();
            for (axis, &amp) in gyro_amp.iter().enumerate() {
                gyro_osc.push(Osc::new(
                    osc_freq,
                    rate,
                    self.session.phase[3 + axis],
                    amp * gyro_scale * drift.gyro_amp_factor(dev, axis) * intensity,
                ));
            }
        } else {
            // Stationary-like: physiological tremor / micro-gestures.
            let tremor = drifted_tremor + normal(&mut self.rng, 0.0, 0.15 * ns);
            let damp = if on_table_phone { 0.35 } else { 1.0 };
            accel_osc.push(Osc::new(
                tremor,
                rate,
                self.session.phase[0],
                p.hand_tremor_amp[dev] * drift.log_hand_tremor[dev].exp() * intensity * damp,
            ));
            let z_ratio = (p.tremor_z_ratio + drift.tremor_z_ratio).clamp(0.3, 0.8);
            let gyro_amp = p.gyro_amp[dev];
            let gyro_scale = p.gyro_scale[dev] * drift.log_gyro_scale[dev].exp();
            for (axis, &amp) in gyro_amp.iter().enumerate() {
                gyro_osc.push(Osc::new(
                    tremor * if axis == 2 { z_ratio } else { 1.0 },
                    rate,
                    self.session.phase[3 + axis],
                    amp * gyro_scale * drift.gyro_amp_factor(dev, axis) * intensity * damp,
                ));
            }
        }
        // Vehicle adds common-mode sway & engine vibration on both devices.
        let mut sway = None;
        let mut engine = None;
        if ctx == RawContext::Vehicle {
            sway = Some(Osc::new(
                self.session.sway_freq,
                rate,
                self.session.phase[6],
                self.session.sway_amp,
            ));
            engine = Some(Osc::new(
                self.session.engine_freq,
                rate,
                self.session.phase[7],
                self.session.engine_amp,
            ));
        }
        // Sitting users rock slightly too — overlapping with gentle vehicle
        // sway, another §V-E confusion source.
        if ctx == RawContext::SittingStanding {
            let rock_f = (p.rock_freq + drift.rock_freq).clamp(0.25, 0.9);
            sway = Some(Osc::new(
                rock_f + normal(&mut self.rng, 0.0, 0.02 * ns),
                rate,
                self.session.phase[6],
                p.rock_amp * drift.log_rock_amp.exp() * intensity,
            ));
        }

        // --- noise levels -------------------------------------------------
        let (acc_white, gyro_white) = if on_table_phone {
            (0.05 * ns, 0.008 * ns)
        } else if moving {
            (0.35 * ns, 0.08 * ns)
        } else {
            (0.15 * ns, 0.03 * ns)
        };
        // The watch sits on a moving wrist: noisier in every context; the
        // user's hand steadiness scales the noise floor too (an identity
        // signal that survives in the Var features).
        let dev_noise = if dev == 1 { 1.35 } else { 1.0 };
        let acc_white =
            acc_white * dev_noise * p.noise_factor[dev][0] * drift.log_noise[dev][0].exp();
        let gyro_white =
            gyro_white * dev_noise * p.noise_factor[dev][1] * drift.log_noise[dev][1].exp();

        // --- tap/flick train (stationary-like usage) ----------------------
        // Typing on the phone / wrist micro-flicks on the watch: an impulse
        // train whose rate and strength are user habits. Dominates the Max
        // and Var features the way real touch interaction does.
        let mut taps: Vec<(usize, f64)> = Vec::new(); // (pos, amp)
        if !moving {
            let tap_rate_hz = (p.tap_rate[dev] + drift.tap_rate[dev]).clamp(0.3, 6.0);
            let tap_amp = p.tap_amp[dev] * drift.log_tap_amp[dev].exp();
            let interval = rate / tap_rate_hz;
            let mut pos = uniform(&mut self.rng, 0.0, interval);
            while (pos as usize) < n {
                taps.push((
                    pos as usize,
                    tap_amp * log_normal(&mut self.rng, 0.0, 0.25 * ns.max(0.05)),
                ));
                pos += interval * uniform(&mut self.rng, 0.75, 1.25);
            }
        }

        // --- impulsive outlier (bump / pickup / drop) ---------------------
        let mut impulses: Vec<(usize, f64, f64)> = Vec::new(); // (pos, amp, decay)
        if outlier {
            let events = self.rng.random_range(1..4usize);
            for _ in 0..events {
                impulses.push((
                    self.rng.random_range(0..n),
                    uniform(&mut self.rng, 2.5, 8.0),
                    uniform(&mut self.rng, 0.45, 0.75),
                ));
            }
        }

        // --- synthesize ----------------------------------------------------
        let mut accel = [vec![0.0; n], vec![0.0; n], vec![0.0; n]];
        let mut gyro = [vec![0.0; n], vec![0.0; n], vec![0.0; n]];
        // Distribution of linear gait/tremor motion across device axes
        // follows the carry orientation.
        let dir = [
            pitch.sin().abs().max(0.15),
            (roll.sin() * pitch.cos()).abs().max(0.1),
            (pitch.cos() * roll.cos()).abs().max(0.2),
        ];
        let mut wander = [0.0f64; 3];
        let wander_sigma = if moving { 0.10 } else { 0.05 } * ns;
        for t in 0..n {
            let osc_sum: f64 = accel_osc.iter_mut().map(Osc::next).sum();
            let sway_v = sway.as_mut().map_or(0.0, Osc::next);
            let engine_v = engine.as_mut().map_or(0.0, Osc::next);
            let imp: f64 = impulses
                .iter()
                .map(|&(pos, amp, decay)| {
                    if t >= pos {
                        amp * decay.powi((t - pos) as i32)
                    } else {
                        0.0
                    }
                })
                .sum();
            let tap: f64 = taps
                .iter()
                .map(|&(pos, amp)| {
                    if t >= pos && t < pos + 4 {
                        amp * 0.55f64.powi((t - pos) as i32)
                    } else {
                        0.0
                    }
                })
                .sum();
            for axis in 0..3 {
                wander[axis] += 0.08 * (gaussian(&mut self.rng) * wander_sigma - wander[axis]);
                let axis_weight = match axis {
                    0 => dir[0],
                    1 => dir[1],
                    _ => dir[2],
                };
                let sway_contrib = if axis == 2 { engine_v } else { sway_v * 0.7 };
                accel[axis][t] = grav[axis]
                    + osc_sum * axis_weight
                    + sway_contrib
                    + wander[axis]
                    + (imp + tap) * axis_weight
                    + gaussian(&mut self.rng) * acc_white;
            }
            for (axis, osc) in gyro_osc.iter_mut().enumerate() {
                let v = osc.next();
                gyro[axis][t] = v
                    + sway_v * 0.02
                    + imp * 0.01
                    + tap * 0.04
                    + gaussian(&mut self.rng) * gyro_white;
            }
        }

        // --- environment-dominated sensors ---------------------------------
        let mut mag = [vec![0.0; n], vec![0.0; n], vec![0.0; n]];
        let mut orientation = [vec![0.0; n], vec![0.0; n], vec![0.0; n]];
        let mut light = vec![0.0; n];
        let mag_wander_sigma = if moving { 2.5 } else { 0.8 };
        let ori_wander_sigma = if moving { 0.12 } else { 0.03 };
        let mut mw = [0.0f64; 3];
        let mut ow = [0.0f64; 3];
        let light_user = p.light_offset * if dev == 1 { 1.7 } else { 0.7 };
        for t in 0..n {
            for axis in 0..3 {
                mw[axis] += 0.04 * (gaussian(&mut self.rng) * mag_wander_sigma - mw[axis]);
                ow[axis] += 0.04 * (gaussian(&mut self.rng) * ori_wander_sigma - ow[axis]);
                mag[axis][t] =
                    self.session.mag_base[dev][axis] + mw[axis] + gaussian(&mut self.rng) * 0.5;
                orientation[axis][t] = self.session.ori_base[dev][axis]
                    + if axis == 1 { pitch * 0.1 } else { 0.0 }
                    + ow[axis]
                    + gaussian(&mut self.rng) * 0.02;
            }
            light[t] = self.session.light_level + light_user + gaussian(&mut self.rng) * 0.05;
        }

        SensorWindow {
            accel,
            gyro,
            mag,
            orientation,
            light,
        }
    }
}

impl SessionState {
    fn draw(rng: &mut StdRng, context: RawContext, cfg: &GeneratorConfig) -> Self {
        let ns = cfg.noise_scale;
        let jitter =
            |rng: &mut StdRng, p: f64, r: f64| (normal(rng, 0.0, p * ns), normal(rng, 0.0, r * ns));
        SessionState {
            context,
            // Phone posture re-settles less than the watch (wrist moves).
            pose_jitter: [jitter(rng, 0.07, 0.045), jitter(rng, 0.09, 0.055)],
            mag_base: [
                [
                    normal(rng, 20.0, 15.0),
                    normal(rng, 0.0, 15.0),
                    normal(rng, -40.0, 15.0),
                ],
                [
                    normal(rng, 20.0, 15.0),
                    normal(rng, 0.0, 15.0),
                    normal(rng, -40.0, 15.0),
                ],
            ],
            ori_base: [
                [
                    uniform(rng, -std::f64::consts::PI, std::f64::consts::PI),
                    normal(rng, 0.0, 0.6),
                    normal(rng, 0.0, 0.6),
                ],
                [
                    uniform(rng, -std::f64::consts::PI, std::f64::consts::PI),
                    normal(rng, 0.0, 0.6),
                    normal(rng, 0.0, 0.6),
                ],
            ],
            light_level: normal(rng, 5.5, 1.2),
            sway_freq: uniform(rng, 0.3, 0.7),
            sway_amp: uniform(rng, 0.08, 0.22),
            engine_freq: uniform(rng, 10.0, 14.0),
            engine_amp: uniform(rng, 0.03, 0.10),
            phase: std::array::from_fn(|_| uniform(rng, 0.0, 2.0 * std::f64::consts::PI)),
        }
    }
}

/// Phasor-rotation sinusoid generator: `amp · sin(2πft + φ)` without a
/// per-sample `sin` call.
#[derive(Debug, Clone)]
struct Osc {
    re: f64,
    im: f64,
    rot_re: f64,
    rot_im: f64,
    amp: f64,
}

impl Osc {
    fn new(freq: f64, rate: f64, phase: f64, amp: f64) -> Self {
        let step = 2.0 * std::f64::consts::PI * freq / rate;
        Osc {
            re: phase.cos(),
            im: phase.sin(),
            rot_re: step.cos(),
            rot_im: step.sin(),
            amp,
        }
    }

    #[inline]
    fn next(&mut self) -> f64 {
        let v = self.amp * self.im;
        let re = self.re * self.rot_re - self.im * self.rot_im;
        let im = self.re * self.rot_im + self.im * self.rot_re;
        self.re = re;
        self.im = im;
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::test_profile;
    use smarteryou_stats as stats;

    fn spec() -> WindowSpec {
        WindowSpec::default()
    }

    #[test]
    fn window_spec_shapes() {
        let s = WindowSpec::from_seconds(6.0, 50.0);
        assert_eq!(s.samples, 300);
        assert!((s.seconds() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn windows_have_requested_shape() {
        let mut g = TraceGenerator::new(test_profile(0), 1);
        g.begin_session(RawContext::MovingAround);
        let w = g.next_window(spec());
        assert_eq!(w.phone.accel[0].len(), 300);
        assert_eq!(w.watch.gyro[2].len(), 300);
        assert_eq!(w.phone.light.len(), 300);
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let mut g1 = TraceGenerator::new(test_profile(0), 9);
        let mut g2 = TraceGenerator::new(test_profile(0), 9);
        g1.begin_session(RawContext::SittingStanding);
        g2.begin_session(RawContext::SittingStanding);
        assert_eq!(g1.next_window(spec()), g2.next_window(spec()));
    }

    #[test]
    fn different_seeds_differ() {
        let mut g1 = TraceGenerator::new(test_profile(0), 1);
        let mut g2 = TraceGenerator::new(test_profile(0), 2);
        g1.begin_session(RawContext::SittingStanding);
        g2.begin_session(RawContext::SittingStanding);
        assert_ne!(g1.next_window(spec()), g2.next_window(spec()));
    }

    #[test]
    fn moving_windows_have_much_higher_accel_variance() {
        let mut g = TraceGenerator::new(test_profile(1), 3);
        let still = g.generate_windows(RawContext::SittingStanding, spec(), 6);
        let moving = g.generate_windows(RawContext::MovingAround, spec(), 6);
        let var = |ws: &[DualDeviceWindow]| {
            let vals: Vec<f64> = ws
                .iter()
                .map(|w| stats::variance(&w.phone.magnitude(crate::SensorKind::Accelerometer)))
                .collect();
            stats::mean(&vals)
        };
        assert!(
            var(&moving) > 8.0 * var(&still),
            "moving {} vs still {}",
            var(&moving),
            var(&still)
        );
    }

    #[test]
    fn gait_frequency_is_recoverable_from_spectrum() {
        let profile = test_profile(2);
        let expect = profile.gait_frequency();
        let mut g = TraceGenerator::new(profile, 4);
        let w = g.generate_windows(RawContext::MovingAround, spec(), 4);
        // Average the detected main peak over a few windows.
        let mut freqs = Vec::new();
        for win in &w {
            let m = win.phone.magnitude(crate::SensorKind::Accelerometer);
            let spectrum = smarteryou_dsp::magnitude_spectrum(&m);
            let peaks = smarteryou_dsp::spectral_peaks(&spectrum, 50.0).unwrap();
            freqs.push(peaks.main_frequency);
        }
        let mean = stats::mean(&freqs);
        assert!(
            (mean - expect).abs() < 0.5,
            "detected {mean} vs profile {expect}"
        );
    }

    #[test]
    fn on_table_is_quieter_than_handheld() {
        let mut g = TraceGenerator::new(test_profile(3), 5);
        let hand = g.generate_windows(RawContext::SittingStanding, spec(), 5);
        let table = g.generate_windows(RawContext::OnTable, spec(), 5);
        let gyro_energy = |ws: &[DualDeviceWindow]| {
            let vals: Vec<f64> = ws
                .iter()
                .map(|w| stats::variance(&w.phone.magnitude(crate::SensorKind::Gyroscope)))
                .collect();
            stats::mean(&vals)
        };
        assert!(gyro_energy(&table) < gyro_energy(&hand));
    }

    #[test]
    fn outliers_inflate_heavy_tail() {
        let cfg = GeneratorConfig {
            outlier_prob: 1.0,
            ..GeneratorConfig::default()
        };
        let clean_cfg = GeneratorConfig {
            outlier_prob: 0.0,
            ..GeneratorConfig::default()
        };
        let mut noisy = TraceGenerator::with_config(test_profile(4), 6, cfg);
        let mut clean = TraceGenerator::with_config(test_profile(4), 6, clean_cfg);
        let max_of = |g: &mut TraceGenerator| {
            let ws = g.generate_windows(RawContext::SittingStanding, spec(), 8);
            ws.iter()
                .map(|w| {
                    let m = w.phone.magnitude(crate::SensorKind::Accelerometer);
                    stats::max(&m)
                })
                .fold(0.0f64, f64::max)
        };
        assert!(max_of(&mut noisy) > max_of(&mut clean) + 2.0);
    }

    #[test]
    fn drift_changes_the_signal_slowly() {
        let mk = || {
            TraceGenerator::with_config(
                test_profile(5),
                7,
                GeneratorConfig {
                    noise_scale: 0.0,
                    outlier_prob: 0.0,
                    drift_scale: 1.0,
                },
            )
        };
        // With noise off, day-0 windows match; after 30 days of drift the
        // accel means move.
        let mut g0 = mk();
        let mut g30 = mk();
        g30.advance_days(30.0);
        g0.begin_session(RawContext::SittingStanding);
        let w0 = g0.next_window(spec());
        g30.begin_session(RawContext::SittingStanding);
        let w30 = g30.next_window(spec());
        let m0 = stats::mean(&w0.phone.magnitude(crate::SensorKind::Accelerometer));
        let m30 = stats::mean(&w30.phone.magnitude(crate::SensorKind::Accelerometer));
        // Magnitude stays near gravity but the axis distribution changes.
        let x0 = stats::mean(&w0.phone.accel[0]);
        let x30 = stats::mean(&w30.phone.accel[0]);
        assert!((m0 - m30).abs() < 2.0, "magnitudes stay near g");
        assert!((x0 - x30).abs() > 1e-3, "x-axis mean drifts");
    }

    #[test]
    fn advance_days_rejects_negative() {
        let mut g = TraceGenerator::new(test_profile(0), 1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            g.advance_days(-1.0);
        }));
        assert!(result.is_err());
    }
}
