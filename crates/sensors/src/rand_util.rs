//! Small random-sampling helpers (the workspace avoids `rand_distr`).

use rand::Rng;

/// Standard normal sample via the Box–Muller transform.
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0).
    let u1: f64 = loop {
        let u: f64 = rng.random();
        if u > 1e-12 {
            break u;
        }
    };
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Normal sample with the given mean and standard deviation.
///
/// # Panics
///
/// Panics (debug) if `std_dev` is negative.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    debug_assert!(std_dev >= 0.0, "negative std dev");
    mean + std_dev * gaussian(rng)
}

/// Log-normal sample: `exp(N(mu, sigma))`. Used for per-window intensity
/// modulation (always positive, right-skewed like real activity levels).
pub fn log_normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Uniform sample in `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo >= hi`.
pub fn uniform<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    assert!(lo < hi, "empty uniform range [{lo}, {hi})");
    lo + (hi - lo) * rng.random::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gaussian_moments_are_standard() {
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..20_000).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn normal_scales_and_shifts() {
        let mut rng = StdRng::seed_from_u64(2);
        let samples: Vec<f64> = (0..20_000).map(|_| normal(&mut rng, 5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 5.0).abs() < 0.1);
    }

    #[test]
    fn log_normal_is_positive() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!((0..1000).all(|_| log_normal(&mut rng, 0.0, 0.5) > 0.0));
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v = uniform(&mut rng, -2.0, 3.0);
            assert!((-2.0..3.0).contains(&v));
        }
    }
}
