//! Component-level battery model reproducing Table VIII (§V-H3).
//!
//! The paper measures battery drain in four scenarios on a Nexus 5. We have
//! no hardware, so this module substitutes an explicit energy-accounting
//! model: each platform component draws a calibrated percentage of battery
//! per hour, and scenarios compose components over a duty cycle. The
//! calibration reproduces the paper's four measurements; the model then
//! *predicts* (rather than restates) variants like different sampling rates,
//! which §V-H2 says scale CPU cost roughly linearly.

use serde::{Deserialize, Serialize};

use crate::types::SAMPLE_RATE_HZ;

/// The four measurement scenarios of Table VIII.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PowerScenario {
    /// Phone locked (idle), SmarterYou off — 12 h test.
    LockedMonitorOff,
    /// Phone locked, SmarterYou sampling in the background — 12 h test.
    LockedMonitorOn,
    /// Phone in periodic use (5 min on / 5 min off), SmarterYou off — 1 h.
    InUseMonitorOff,
    /// Phone in periodic use, SmarterYou authenticating — 1 h.
    InUseMonitorOn,
}

impl PowerScenario {
    /// All scenarios in Table VIII order.
    pub const ALL: [PowerScenario; 4] = [
        PowerScenario::LockedMonitorOff,
        PowerScenario::LockedMonitorOn,
        PowerScenario::InUseMonitorOff,
        PowerScenario::InUseMonitorOn,
    ];

    /// Table VIII row label.
    pub fn label(&self) -> &'static str {
        match self {
            PowerScenario::LockedMonitorOff => "Phone locked, SmarterYou off",
            PowerScenario::LockedMonitorOn => "Phone locked, SmarterYou on",
            PowerScenario::InUseMonitorOff => "Phone unlocked, SmarterYou off",
            PowerScenario::InUseMonitorOn => "Phone unlocked, SmarterYou on",
        }
    }

    /// Test duration in hours (the paper used 12 h for locked scenarios and
    /// 1 h for in-use scenarios).
    pub fn duration_hours(&self) -> f64 {
        match self {
            PowerScenario::LockedMonitorOff | PowerScenario::LockedMonitorOn => 12.0,
            _ => 1.0,
        }
    }

    /// Fraction of the test spent actively interacting (screen on, typing).
    fn active_duty(&self) -> f64 {
        match self {
            PowerScenario::LockedMonitorOff | PowerScenario::LockedMonitorOn => 0.0,
            // 5 minutes on / 5 minutes off.
            _ => 0.5,
        }
    }

    /// Whether the SmarterYou service is running.
    fn monitor_on(&self) -> bool {
        matches!(
            self,
            PowerScenario::LockedMonitorOn | PowerScenario::InUseMonitorOn
        )
    }

    /// Paper-reported battery consumption for this scenario (percent).
    pub fn paper_value(&self) -> f64 {
        match self {
            PowerScenario::LockedMonitorOff => 2.8,
            PowerScenario::LockedMonitorOn => 4.9,
            PowerScenario::InUseMonitorOff => 5.2,
            PowerScenario::InUseMonitorOn => 7.6,
        }
    }
}

/// Battery drain rates per component, in percent of battery per hour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Baseline drain with the phone idle and locked.
    pub idle: f64,
    /// Screen plus interactive CPU while the user is actively using it.
    pub interactive: f64,
    /// Continuous 50 Hz sensor sampling + buffering (keeps a core awake).
    pub sensor_sampling: f64,
    /// Feature extraction + context detection + classification + BLE sync
    /// with the watch, active only while the phone is in use.
    pub auth_pipeline: f64,
    /// Sensor sampling rate the calibration assumes (Hz).
    pub sample_rate: f64,
}

impl Default for PowerModel {
    /// Calibrated to reproduce Table VIII exactly; see the module docs.
    fn default() -> Self {
        // Solve the four scenario equations:
        //   12·idle                         = 2.8  → idle = 0.2333
        //   12·(idle + sampling)            = 4.9  → sampling = 0.175
        //   idle + 0.5·interactive          = 5.2  → interactive = 9.933
        //   ... + sampling + 0.5·pipeline   = 7.6  → pipeline = 4.45
        PowerModel {
            idle: 2.8 / 12.0,
            interactive: (5.2 - 2.8 / 12.0) / 0.5,
            sensor_sampling: (4.9 - 2.8) / 12.0,
            auth_pipeline: (7.6 - 5.2 - (4.9 - 2.8) / 12.0) / 0.5,
            sample_rate: SAMPLE_RATE_HZ,
        }
    }
}

impl PowerModel {
    /// Predicted battery drain (percent) for a scenario over its standard
    /// test duration.
    pub fn drain(&self, scenario: PowerScenario) -> f64 {
        self.drain_for(scenario, scenario.duration_hours(), self.sample_rate)
    }

    /// Predicted drain over `hours` at an arbitrary sensor `rate_hz` —
    /// sampling and pipeline cost scale linearly with rate, as §V-H2 notes
    /// ("CPU utilization ... will scale with the sampling rate").
    pub fn drain_for(&self, scenario: PowerScenario, hours: f64, rate_hz: f64) -> f64 {
        let rate_factor = rate_hz / self.sample_rate;
        let duty = scenario.active_duty();
        let mut per_hour = self.idle + duty * self.interactive;
        if scenario.monitor_on() {
            per_hour += self.sensor_sampling * rate_factor;
            per_hour += duty * self.auth_pipeline * rate_factor;
        }
        per_hour * hours
    }

    /// Extra drain attributable to SmarterYou in a scenario (percent over
    /// the standard duration) — the quantity the paper's abstract quotes
    /// ("less than 2.4% battery consumption").
    pub fn monitor_overhead(&self, active: bool) -> f64 {
        if active {
            self.drain(PowerScenario::InUseMonitorOn) - self.drain(PowerScenario::InUseMonitorOff)
        } else {
            self.drain(PowerScenario::LockedMonitorOn) - self.drain(PowerScenario::LockedMonitorOff)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_reproduces_table_viii() {
        let m = PowerModel::default();
        for s in PowerScenario::ALL {
            let got = m.drain(s);
            assert!(
                (got - s.paper_value()).abs() < 0.05,
                "{}: {got} vs paper {}",
                s.label(),
                s.paper_value()
            );
        }
    }

    #[test]
    fn monitor_overhead_matches_abstract() {
        let m = PowerModel::default();
        // "less than 2.4% battery consumption" (in-use hour).
        assert!((m.monitor_overhead(true) - 2.4).abs() < 0.05);
        // 2.1% over 12 idle hours (§V-H3 scenarios 1 vs 2).
        assert!((m.monitor_overhead(false) - 2.1).abs() < 0.05);
    }

    #[test]
    fn drain_scales_with_sampling_rate() {
        let m = PowerModel::default();
        let at50 = m.drain_for(PowerScenario::LockedMonitorOn, 12.0, 50.0);
        let at100 = m.drain_for(PowerScenario::LockedMonitorOn, 12.0, 100.0);
        let at25 = m.drain_for(PowerScenario::LockedMonitorOn, 12.0, 25.0);
        assert!(at100 > at50 && at50 > at25);
        // Idle floor is unaffected by rate.
        let off50 = m.drain_for(PowerScenario::LockedMonitorOff, 12.0, 50.0);
        let off100 = m.drain_for(PowerScenario::LockedMonitorOff, 12.0, 100.0);
        assert_eq!(off50, off100);
    }

    #[test]
    fn scenario_metadata() {
        assert_eq!(PowerScenario::ALL.len(), 4);
        assert_eq!(PowerScenario::LockedMonitorOff.duration_hours(), 12.0);
        assert_eq!(PowerScenario::InUseMonitorOn.duration_hours(), 1.0);
        assert!(PowerScenario::InUseMonitorOn.label().contains("unlocked"));
    }
}
