use rand::Rng;
use serde::{Deserialize, Serialize};

/// Participant gender, as recorded in the study demographics (Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Gender {
    /// Female (16 of the paper's 35 participants).
    Female,
    /// Male (19 of the paper's 35 participants).
    Male,
}

/// Participant age band, as recorded in the study demographics (Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AgeBand {
    /// 20–25 years (12 participants).
    From20To25,
    /// 25–30 years (9 participants).
    From25To30,
    /// 30–35 years (5 participants).
    From30To35,
    /// 35–40 years (5 participants).
    From35To40,
    /// Over 40 years (4 participants).
    Over40,
}

impl AgeBand {
    /// All bands in Figure 2's order.
    pub const ALL: [AgeBand; 5] = [
        AgeBand::From20To25,
        AgeBand::From25To30,
        AgeBand::From30To35,
        AgeBand::From35To40,
        AgeBand::Over40,
    ];

    /// Display label matching the figure.
    pub fn label(&self) -> &'static str {
        match self {
            AgeBand::From20To25 => "20-25",
            AgeBand::From25To30 => "25-30",
            AgeBand::From30To35 => "30-35",
            AgeBand::From35To40 => "35-40",
            AgeBand::Over40 => "40+",
        }
    }
}

/// Demographics of one simulated participant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Demographics {
    /// Gender.
    pub gender: Gender,
    /// Age band.
    pub age: AgeBand,
}

/// Figure 2 counts: (female, male) out of 35.
pub const GENDER_COUNTS: (usize, usize) = (16, 19);
/// Figure 2 counts per [`AgeBand::ALL`] entry, summing to 35.
pub const AGE_COUNTS: [usize; 5] = [12, 9, 5, 5, 4];

/// Assigns demographics to `n` participants.
///
/// For `n == 35` the assignment reproduces Figure 2's histogram exactly;
/// other sizes scale the proportions. The pairing of gender and age is
/// shuffled by `rng` (the paper does not report the joint distribution).
pub fn assign_demographics<R: Rng>(n: usize, rng: &mut R) -> Vec<Demographics> {
    let n_female = (n * GENDER_COUNTS.0 + 17) / 35; // rounded proportion
    let mut genders: Vec<Gender> = (0..n)
        .map(|i| {
            if i < n_female {
                Gender::Female
            } else {
                Gender::Male
            }
        })
        .collect();
    let total: usize = AGE_COUNTS.iter().sum();
    let mut ages = Vec::with_capacity(n);
    for (band, &count) in AgeBand::ALL.iter().zip(&AGE_COUNTS) {
        let share = (n * count + total / 2) / total;
        ages.extend(std::iter::repeat_n(*band, share));
    }
    // Rounding can over/undershoot; trim or pad with the most common band.
    ages.truncate(n);
    while ages.len() < n {
        ages.push(AgeBand::From20To25);
    }
    // Shuffle the pairing only, keeping the marginals intact.
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        genders.swap(i, j);
        let k = rng.random_range(0..=i);
        ages.swap(i, k);
    }
    genders
        .into_iter()
        .zip(ages)
        .map(|(gender, age)| Demographics { gender, age })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn thirty_five_users_match_figure_two() {
        let mut rng = StdRng::seed_from_u64(1);
        let demo = assign_demographics(35, &mut rng);
        assert_eq!(demo.len(), 35);
        let females = demo.iter().filter(|d| d.gender == Gender::Female).count();
        assert_eq!(females, 16);
        for (band, &expect) in AgeBand::ALL.iter().zip(&AGE_COUNTS) {
            let got = demo.iter().filter(|d| d.age == *band).count();
            assert_eq!(got, expect, "band {}", band.label());
        }
    }

    #[test]
    fn other_sizes_scale_proportionally() {
        let mut rng = StdRng::seed_from_u64(2);
        let demo = assign_demographics(10, &mut rng);
        assert_eq!(demo.len(), 10);
        let females = demo.iter().filter(|d| d.gender == Gender::Female).count();
        assert!((4..=6).contains(&females), "females {females}");
    }

    #[test]
    fn age_counts_sum_to_thirty_five() {
        assert_eq!(AGE_COUNTS.iter().sum::<usize>(), 35);
        assert_eq!(GENDER_COUNTS.0 + GENDER_COUNTS.1, 35);
    }
}
