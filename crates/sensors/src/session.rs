use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::context::{RawContext, UsageContext};
use crate::generator::{GeneratorConfig, TraceGenerator, WindowSpec};
use crate::profile::UserProfile;
use crate::rand_util::uniform;
use crate::types::DualDeviceWindow;

/// One generated window together with its ground-truth labels — the unit of
/// the paper's free-form data collection (§V-A: participants used the
/// devices normally for one to two weeks).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabeledWindow {
    /// Simulated day (fractional) at which the window was captured.
    pub day: f64,
    /// Fine-grained ground-truth context.
    pub raw_context: RawContext,
    /// Sensor data from both devices.
    pub window: DualDeviceWindow,
}

impl LabeledWindow {
    /// Coarse two-class context label (what the deployed detector predicts).
    pub fn context(&self) -> UsageContext {
        self.raw_context.coarse()
    }
}

/// Free-form usage schedule: how often and in which contexts a user touches
/// the phone.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UsageSchedule {
    /// Usage sessions per simulated day.
    pub sessions_per_day: usize,
    /// Windows captured per session (uniform in this range, inclusive).
    pub windows_per_session: (usize, usize),
    /// Probability that a session is on the move; the rest is split across
    /// the stationary-like contexts.
    pub moving_fraction: f64,
}

impl Default for UsageSchedule {
    fn default() -> Self {
        UsageSchedule {
            sessions_per_day: 12,
            windows_per_session: (5, 15),
            moving_fraction: 0.4,
        }
    }
}

impl UsageSchedule {
    /// Draws a session context according to the schedule's mix.
    fn draw_context<R: Rng>(&self, rng: &mut R) -> RawContext {
        let u: f64 = rng.random();
        if u < self.moving_fraction {
            RawContext::MovingAround
        } else {
            // Stationary-like mix: mostly in-hand, some on-table/vehicle.
            let v = uniform(rng, 0.0, 1.0);
            if v < 0.6 {
                RawContext::SittingStanding
            } else if v < 0.85 {
                RawContext::OnTable
            } else {
                RawContext::Vehicle
            }
        }
    }
}

/// Simulates multi-day free-form usage for one user, producing labelled
/// windows for enrollment and evaluation.
#[derive(Debug, Clone)]
pub struct UsageSimulator {
    generator: TraceGenerator,
    schedule: UsageSchedule,
    spec: WindowSpec,
}

impl UsageSimulator {
    /// Creates a simulator with the default schedule, window spec and
    /// generator configuration.
    pub fn new(profile: UserProfile, seed: u64) -> Self {
        UsageSimulator {
            generator: TraceGenerator::new(profile, seed),
            schedule: UsageSchedule::default(),
            spec: WindowSpec::default(),
        }
    }

    /// Overrides the generator configuration (noise/outliers/drift).
    pub fn with_generator_config(mut self, cfg: GeneratorConfig) -> Self {
        let profile = self.generator.profile().clone();
        // Rebuild the generator preserving the seed-derived stream by using
        // the profile id; day state restarts at zero.
        self.generator = TraceGenerator::with_config(profile, self.seed_hint(), cfg);
        self
    }

    /// Overrides the usage schedule.
    pub fn with_schedule(mut self, schedule: UsageSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Overrides the window spec.
    pub fn with_window_spec(mut self, spec: WindowSpec) -> Self {
        self.spec = spec;
        self
    }

    fn seed_hint(&self) -> u64 {
        // The generator's RNG is already seeded; reuse the profile id so the
        // rebuilt generator stays deterministic per user.
        0xC0FFEE ^ self.generator.profile().id.0 as u64
    }

    /// Current simulated day.
    pub fn day(&self) -> f64 {
        self.generator.day()
    }

    /// Mutable access to the underlying generator (advanced use: custom
    /// drift/session control).
    pub fn generator_mut(&mut self) -> &mut TraceGenerator {
        &mut self.generator
    }

    /// Simulates `days` of free-form usage, returning all captured windows
    /// in chronological order.
    pub fn collect_days(&mut self, days: usize, rng: &mut impl Rng) -> Vec<LabeledWindow> {
        let mut out = Vec::new();
        for _ in 0..days {
            let day_start = self.generator.day();
            for s in 0..self.schedule.sessions_per_day {
                // Spread sessions through the day, advancing drift a little.
                let gap = 1.0 / self.schedule.sessions_per_day as f64;
                self.generator.advance_days(gap * 0.999);
                let ctx = self.schedule.draw_context(rng);
                self.generator.begin_session(ctx);
                let (lo, hi) = self.schedule.windows_per_session;
                let count = rng.random_range(lo..=hi);
                for _ in 0..count {
                    out.push(LabeledWindow {
                        day: day_start + s as f64 * gap,
                        raw_context: ctx,
                        window: self.generator.next_window(self.spec),
                    });
                }
            }
        }
        out
    }

    /// Collects at least `n` windows of each coarse context (balanced
    /// enrollment buffers), simulating as many days as needed.
    pub fn collect_per_context(
        &mut self,
        n: usize,
        rng: &mut impl Rng,
    ) -> (Vec<LabeledWindow>, Vec<LabeledWindow>) {
        let mut stationary = Vec::new();
        let mut moving = Vec::new();
        let mut guard = 0usize;
        while (stationary.len() < n || moving.len() < n) && guard < 10_000 {
            guard += 1;
            for w in self.collect_days(1, rng) {
                match w.context() {
                    UsageContext::Stationary => {
                        if stationary.len() < n {
                            stationary.push(w);
                        }
                    }
                    UsageContext::Moving => {
                        if moving.len() < n {
                            moving.push(w);
                        }
                    }
                }
            }
        }
        (stationary, moving)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::test_profile;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_spec() -> WindowSpec {
        WindowSpec::from_seconds(2.0, 50.0)
    }

    #[test]
    fn collect_days_produces_chronological_windows() {
        let mut sim = UsageSimulator::new(test_profile(0), 1).with_window_spec(small_spec());
        let mut rng = StdRng::seed_from_u64(5);
        let windows = sim.collect_days(2, &mut rng);
        assert!(!windows.is_empty());
        for pair in windows.windows(2) {
            assert!(pair[0].day <= pair[1].day);
        }
        // About 12 sessions × ~10 windows × 2 days.
        assert!(windows.len() > 100, "got {}", windows.len());
        assert!(sim.day() >= 1.9);
    }

    #[test]
    fn schedule_controls_context_mix() {
        let schedule = UsageSchedule {
            moving_fraction: 1.0,
            ..UsageSchedule::default()
        };
        let mut sim = UsageSimulator::new(test_profile(1), 2)
            .with_schedule(schedule)
            .with_window_spec(small_spec());
        let mut rng = StdRng::seed_from_u64(6);
        let windows = sim.collect_days(1, &mut rng);
        assert!(windows
            .iter()
            .all(|w| w.raw_context == RawContext::MovingAround));
    }

    #[test]
    fn per_context_collection_balances() {
        let mut sim = UsageSimulator::new(test_profile(2), 3).with_window_spec(small_spec());
        let mut rng = StdRng::seed_from_u64(7);
        let (stationary, moving) = sim.collect_per_context(30, &mut rng);
        assert_eq!(stationary.len(), 30);
        assert_eq!(moving.len(), 30);
        assert!(stationary
            .iter()
            .all(|w| w.context() == UsageContext::Stationary));
        assert!(moving.iter().all(|w| w.context() == UsageContext::Moving));
    }

    #[test]
    fn labeled_window_exposes_coarse_context() {
        let mut sim = UsageSimulator::new(test_profile(3), 4).with_window_spec(small_spec());
        let mut rng = StdRng::seed_from_u64(8);
        let windows = sim.collect_days(1, &mut rng);
        for w in &windows {
            assert_eq!(w.context(), w.raw_context.coarse());
        }
    }
}
