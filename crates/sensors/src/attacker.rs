use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::profile::UserProfile;
use crate::rand_util::{normal, uniform};

/// A masquerading adversary imitating a victim (§V-G).
///
/// The paper's attack model: the adversary watches a recording of the victim
/// and mimics their behaviour while performing the same tasks. Imitation is
/// effective for *observable, coarse* behaviour — how the phone is held, how
/// fast the victim walks, how energetic their gestures are — but not for
/// *fine-grained* motor characteristics (tremor spectrum, gait harmonic
/// shape, sensor-level noise signature), which are not visible to the eye
/// and not consciously controllable.
///
/// [`MimicryAttacker::masquerade_profile`] therefore blends only the coarse
/// parameters toward the victim's, by a per-attacker `skill ∈ [0, 1]`, with
/// residual imitation error; fine parameters remain the attacker's own.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MimicryAttacker {
    attacker: UserProfile,
    skill: f64,
}

impl MimicryAttacker {
    /// Wraps an attacker profile with an imitation skill in `[0, 1]`
    /// (0 = no imitation, 1 = perfect imitation of coarse behaviour).
    ///
    /// # Panics
    ///
    /// Panics if `skill` is outside `[0, 1]`.
    pub fn new(attacker: UserProfile, skill: f64) -> Self {
        assert!((0.0..=1.0).contains(&skill), "skill must be in [0,1]");
        MimicryAttacker { attacker, skill }
    }

    /// Draws a skill level for a motivated attacker (uniform 0.5–0.85 — they
    /// practised, but imitation stays imperfect).
    pub fn with_random_skill(attacker: UserProfile, rng: &mut StdRng) -> Self {
        let skill = uniform(rng, 0.45, 0.8);
        MimicryAttacker { attacker, skill }
    }

    /// The attacker's imitation skill.
    pub fn skill(&self) -> f64 {
        self.skill
    }

    /// The underlying (unblended) attacker profile.
    pub fn attacker(&self) -> &UserProfile {
        &self.attacker
    }

    /// Produces the behavioural profile the attacker exhibits while
    /// masquerading as `victim`.
    ///
    /// Coarse parameters (pose angles, gait cadence and intensity, gesture
    /// energy) are pulled toward the victim's by `skill`, with residual
    /// imitation error drawn from `rng`; fine-grained parameters (tremor
    /// frequency, harmonic shape, swing ratio) stay the attacker's own.
    pub fn masquerade_profile(&self, victim: &UserProfile, rng: &mut StdRng) -> UserProfile {
        let mut out = self.attacker.clone();
        let s = self.skill;
        let blend = |rng: &mut StdRng, own: f64, vic: f64, err: f64| {
            own + s * (vic - own) + normal(rng, 0.0, err * (1.0 - s * 0.5))
        };

        // Observable: how the device is held/carried.
        for d in 0..2 {
            out.p.pose_pitch[d] = blend(
                rng,
                self.attacker.p.pose_pitch[d],
                victim.p.pose_pitch[d],
                0.05,
            );
            out.p.pose_roll[d] = blend(
                rng,
                self.attacker.p.pose_roll[d],
                victim.p.pose_roll[d],
                0.04,
            );
            out.p.pose_pitch_moving[d] = blend(
                rng,
                self.attacker.p.pose_pitch_moving[d],
                victim.p.pose_pitch_moving[d],
                0.06,
            );
            out.p.pose_roll_moving[d] = blend(
                rng,
                self.attacker.p.pose_roll_moving[d],
                victim.p.pose_roll_moving[d],
                0.05,
            );
            out.p.accel_osc_amp[d] = blend(
                rng,
                self.attacker.p.accel_osc_amp[d],
                victim.p.accel_osc_amp[d],
                0.08,
            )
            .max(0.05);
            // Gesture energy can be consciously modulated per axis only
            // crudely: blend the overall scale, not the axis signature.
            let own_scale: f64 = self.attacker.p.gyro_amp[d].iter().sum::<f64>() / 3.0;
            let vic_scale: f64 = victim.p.gyro_amp[d].iter().sum::<f64>() / 3.0;
            let target = blend(rng, own_scale, vic_scale, 0.01).max(1e-3);
            let k = target / own_scale;
            for a in 0..3 {
                out.p.gyro_amp[d][a] = self.attacker.p.gyro_amp[d][a] * k;
                out.p.gyro_amp_moving[d][a] = self.attacker.p.gyro_amp_moving[d][a] * k;
            }
        }
        // Observable: walking speed/energy.
        out.p.gait_freq =
            blend(rng, self.attacker.p.gait_freq, victim.p.gait_freq, 0.05).clamp(1.0, 3.0);
        out.p.gait_intensity = blend(
            rng,
            self.attacker.p.gait_intensity,
            victim.p.gait_intensity,
            0.05,
        )
        .max(0.2);

        // NOT observable / controllable: tremor, harmonic shape, swing ratio
        // and light habits remain the attacker's (already copied via clone).
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::test_profile;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(77)
    }

    #[test]
    fn skill_is_validated() {
        assert!(
            std::panic::catch_unwind(|| { MimicryAttacker::new(test_profile(0), 1.5) }).is_err()
        );
    }

    #[test]
    fn masquerade_moves_coarse_parameters_toward_victim() {
        let attacker = test_profile(1);
        let victim = test_profile(2);
        let mim = MimicryAttacker::new(attacker.clone(), 0.8);
        let blended = mim.masquerade_profile(&victim, &mut rng());
        let gap = |a: f64, b: f64| (a - b).abs();
        assert!(
            gap(blended.p.gait_freq, victim.p.gait_freq)
                < gap(attacker.p.gait_freq, victim.p.gait_freq) + 0.05
        );
        assert!(
            gap(blended.p.pose_pitch[0], victim.p.pose_pitch[0])
                < gap(attacker.p.pose_pitch[0], victim.p.pose_pitch[0])
        );
    }

    #[test]
    fn fine_parameters_stay_the_attackers() {
        let attacker = test_profile(1);
        let victim = test_profile(2);
        let mim = MimicryAttacker::new(attacker.clone(), 0.85);
        let blended = mim.masquerade_profile(&victim, &mut rng());
        assert_eq!(blended.p.tremor_freq, attacker.p.tremor_freq);
        assert_eq!(blended.p.gait_harmonics, attacker.p.gait_harmonics);
        assert_eq!(blended.p.swing_ratio, attacker.p.swing_ratio);
    }

    #[test]
    fn zero_skill_changes_little() {
        let attacker = test_profile(3);
        let victim = test_profile(4);
        let mim = MimicryAttacker::new(attacker.clone(), 0.0);
        let blended = mim.masquerade_profile(&victim, &mut rng());
        // Only the imitation-error jitter remains.
        assert!((blended.p.gait_freq - attacker.p.gait_freq).abs() < 0.3);
    }

    #[test]
    fn random_skill_is_in_band() {
        let mim = MimicryAttacker::with_random_skill(test_profile(5), &mut rng());
        assert!((0.45..=0.8).contains(&mim.skill()));
        assert_eq!(mim.attacker().id, test_profile(5).id);
    }
}
