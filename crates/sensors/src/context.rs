use serde::{Deserialize, Serialize};

/// The four fine-grained usage situations the paper initially tried for
/// context detection (§V-E).
///
/// Three of them ("using while still", "phone resting on a table", "riding
/// a vehicle") are all *relatively stationary* and proved mutually
/// confusable, so the deployed system collapses them into
/// [`UsageContext::Stationary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RawContext {
    /// Using the phone while sitting or standing still.
    SittingStanding,
    /// Using the phone while walking around.
    MovingAround,
    /// Phone stationary on a surface while being used.
    OnTable,
    /// Using the phone on a moving vehicle (train, bus).
    Vehicle,
}

impl RawContext {
    /// All four raw contexts in the paper's numbering order.
    pub const ALL: [RawContext; 4] = [
        RawContext::SittingStanding,
        RawContext::MovingAround,
        RawContext::OnTable,
        RawContext::Vehicle,
    ];

    /// The coarse two-context label used by the deployed system (Table V).
    pub fn coarse(&self) -> UsageContext {
        match self {
            RawContext::MovingAround => UsageContext::Moving,
            _ => UsageContext::Stationary,
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            RawContext::SittingStanding => "sitting/standing",
            RawContext::MovingAround => "moving",
            RawContext::OnTable => "on table",
            RawContext::Vehicle => "vehicle",
        }
    }

    /// Index into [`RawContext::ALL`].
    pub fn index(&self) -> usize {
        RawContext::ALL
            .iter()
            .position(|c| c == self)
            .expect("member")
    }
}

/// The two coarse usage contexts that survive the confusion analysis and
/// drive per-context authentication models (§V-E, Table V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UsageContext {
    /// User relatively still (sitting, standing, phone on table, vehicle).
    Stationary,
    /// User walking / moving around.
    Moving,
}

impl UsageContext {
    /// Both contexts, stationary first (Table V order).
    pub const ALL: [UsageContext; 2] = [UsageContext::Stationary, UsageContext::Moving];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            UsageContext::Stationary => "stationary",
            UsageContext::Moving => "moving",
        }
    }

    /// Index into [`UsageContext::ALL`] (0 = stationary, 1 = moving) —
    /// doubles as the class label for the context classifier.
    pub fn index(&self) -> usize {
        match self {
            UsageContext::Stationary => 0,
            UsageContext::Moving => 1,
        }
    }

    /// Inverse of [`UsageContext::index`]; `None` for out-of-range values.
    pub fn from_index(i: usize) -> Option<UsageContext> {
        UsageContext::ALL.get(i).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coarse_mapping_collapses_stationary_like_contexts() {
        assert_eq!(
            RawContext::SittingStanding.coarse(),
            UsageContext::Stationary
        );
        assert_eq!(RawContext::OnTable.coarse(), UsageContext::Stationary);
        assert_eq!(RawContext::Vehicle.coarse(), UsageContext::Stationary);
        assert_eq!(RawContext::MovingAround.coarse(), UsageContext::Moving);
    }

    #[test]
    fn indices_roundtrip() {
        for c in UsageContext::ALL {
            assert_eq!(UsageContext::from_index(c.index()), Some(c));
        }
        assert_eq!(UsageContext::from_index(9), None);
        for (i, c) in RawContext::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }
}
