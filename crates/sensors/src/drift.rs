use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::rand_util::normal;

/// Slowly varying offsets on a user's behavioural parameters — the paper's
/// *behavioural drift* (§V-I): "the user may change his/her behavioral
/// pattern over weeks or months".
///
/// Drift follows an Ornstein–Uhlenbeck process per parameter: a small
/// diffusion (habits wander day to day) plus exponential relaxation toward
/// the **population norm** (habituation — idiosyncratic carrying angles,
/// gesture energy and micro-motor signature settle toward common
/// ergonomics). The relaxation is what makes Figure 7 reproducible: as a
/// user's parameters regress toward the population, their feature vectors
/// approach the impostor pool and the KRR confidence score `CS = xᵀw*`
/// declines — exactly the trajectory the retraining trigger watches.
///
/// `drift_scale` multiplies the relaxation rate only; the diffusion stays
/// fixed so that large scales model *fast* habituation, not wild behaviour.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DriftState {
    /// Pitch offset per device (rad), stationary pose.
    pub pose_pitch: [f64; 2],
    /// Roll offset per device (rad), stationary pose.
    pub pose_roll: [f64; 2],
    /// Pitch offset per device (rad), moving/carry pose.
    pub pose_pitch_moving: [f64; 2],
    /// Roll offset per device (rad), moving/carry pose.
    pub pose_roll_moving: [f64; 2],
    /// Gait cadence offset (Hz).
    pub gait_freq: f64,
    /// Tremor/micro-gesture frequency offset (Hz).
    pub tremor_freq: f64,
    /// Per-device per-axis log offset on gyro gesture amplitudes.
    pub log_gyro_amp: [[f64; 3]; 2],
    /// Per-device log offset on gait acceleration amplitude.
    pub log_gait_amp: [f64; 2],
    /// Offsets on the relative gait harmonic amplitudes 2–3.
    pub gait_harmonics: [f64; 2],
    /// Offset on the watch arm-swing ratio.
    pub swing_ratio: f64,
    /// Per-device log offset on the hand-tremor amplitude.
    pub log_hand_tremor: [f64; 2],
    /// Per-device × sensor log offset on the steadiness (noise) factors.
    pub log_noise: [[f64; 2]; 2],
    /// Offset on the z-axis tremor frequency ratio.
    pub tremor_z_ratio: f64,
    /// Offset on the seated rocking frequency (Hz).
    pub rock_freq: f64,
    /// Log offset on the rocking amplitude.
    pub log_rock_amp: f64,
    /// Per-device log offset on the overall gyro energy factor.
    pub log_gyro_scale: [f64; 2],
    /// Per-device tap/flick rate offset (Hz).
    pub tap_rate: [f64; 2],
    /// Per-device log offset on the tap amplitude.
    pub log_tap_amp: [f64; 2],
    /// Offset on the gait subharmonic amplitude.
    pub gait_asymmetry: f64,
    /// Offset on the watch tremor-frequency offset.
    pub tremor_offset_watch: f64,
}

/// Where each parameter's offset relaxes to: the (population norm − user
/// value) deviation, i.e. the offset at which the user has fully converged
/// to typical behaviour. Computed once per user (`UserProfile::drift_bias`).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DriftTarget {
    /// Pitch target per device (rad), stationary pose.
    pub pose_pitch: [f64; 2],
    /// Roll target per device (rad), stationary pose.
    pub pose_roll: [f64; 2],
    /// Pitch target per device (rad), moving/carry pose.
    pub pose_pitch_moving: [f64; 2],
    /// Roll target per device (rad), moving/carry pose.
    pub pose_roll_moving: [f64; 2],
    /// Cadence target (Hz).
    pub gait_freq: f64,
    /// Tremor-frequency target (Hz).
    pub tremor_freq: f64,
    /// Per-device per-axis gyro log-amplitude targets.
    pub log_gyro_amp: [[f64; 3]; 2],
    /// Per-device gait log-amplitude targets.
    pub log_gait_amp: [f64; 2],
    /// Targets for the relative gait harmonics 2–3.
    pub gait_harmonics: [f64; 2],
    /// Target for the watch arm-swing ratio.
    pub swing_ratio: f64,
    /// Per-device hand-tremor log-amplitude targets.
    pub log_hand_tremor: [f64; 2],
    /// Per-device × sensor steadiness log targets.
    pub log_noise: [[f64; 2]; 2],
    /// Target for the z-axis tremor ratio.
    pub tremor_z_ratio: f64,
    /// Target for the rocking frequency.
    pub rock_freq: f64,
    /// Target for the rocking log-amplitude.
    pub log_rock_amp: f64,
    /// Per-device overall gyro energy targets.
    pub log_gyro_scale: [f64; 2],
    /// Per-device tap-rate targets (Hz).
    pub tap_rate: [f64; 2],
    /// Per-device tap log-amplitude targets.
    pub log_tap_amp: [f64; 2],
    /// Gait-subharmonic target.
    pub gait_asymmetry: f64,
    /// Watch tremor-offset target.
    pub tremor_offset_watch: f64,
}

/// Relaxation rate toward the population norm, per day, at scale 1.
const KAPPA: f64 = 0.02;

/// Per-√day standard deviations of the diffusion term.
mod rates {
    pub const PITCH: f64 = 0.015;
    pub const ROLL: f64 = 0.010;
    pub const GAIT_FREQ: f64 = 0.010;
    pub const TREMOR_FREQ: f64 = 0.030;
    pub const LOG_AMP: f64 = 0.025;
    pub const HARMONIC: f64 = 0.008;
    pub const SWING: f64 = 0.004;
}

impl DriftState {
    /// Fresh, drift-free state.
    pub fn new() -> Self {
        DriftState::default()
    }

    /// Evolves the process by `days` of elapsed time. `scale` multiplies
    /// the relaxation rate (0 freezes drift entirely); `target` is the
    /// user's habituation endpoint.
    pub fn advance(&mut self, rng: &mut StdRng, days: f64, scale: f64, target: &DriftTarget) {
        if days <= 0.0 || scale <= 0.0 {
            return;
        }
        let decay = (-KAPPA * scale * days).exp();
        let k = days.sqrt();
        let step = |offset: &mut f64, target: f64, sigma: f64, rng: &mut StdRng| {
            *offset = target + (*offset - target) * decay + normal(rng, 0.0, sigma * k);
        };
        for d in 0..2 {
            step(
                &mut self.pose_pitch[d],
                target.pose_pitch[d],
                rates::PITCH,
                rng,
            );
            step(
                &mut self.pose_roll[d],
                target.pose_roll[d],
                rates::ROLL,
                rng,
            );
            step(
                &mut self.pose_pitch_moving[d],
                target.pose_pitch_moving[d],
                rates::PITCH,
                rng,
            );
            step(
                &mut self.pose_roll_moving[d],
                target.pose_roll_moving[d],
                rates::ROLL,
                rng,
            );
            for a in 0..3 {
                step(
                    &mut self.log_gyro_amp[d][a],
                    target.log_gyro_amp[d][a],
                    rates::LOG_AMP,
                    rng,
                );
            }
            step(
                &mut self.log_gait_amp[d],
                target.log_gait_amp[d],
                rates::LOG_AMP,
                rng,
            );
        }
        step(&mut self.gait_freq, target.gait_freq, rates::GAIT_FREQ, rng);
        step(
            &mut self.tremor_freq,
            target.tremor_freq,
            rates::TREMOR_FREQ,
            rng,
        );
        for h in 0..2 {
            step(
                &mut self.gait_harmonics[h],
                target.gait_harmonics[h],
                rates::HARMONIC,
                rng,
            );
        }
        step(&mut self.swing_ratio, target.swing_ratio, rates::SWING, rng);
        for d in 0..2 {
            step(
                &mut self.log_hand_tremor[d],
                target.log_hand_tremor[d],
                rates::LOG_AMP,
                rng,
            );
            for sens in 0..2 {
                step(
                    &mut self.log_noise[d][sens],
                    target.log_noise[d][sens],
                    rates::LOG_AMP,
                    rng,
                );
            }
        }
        step(
            &mut self.tremor_z_ratio,
            target.tremor_z_ratio,
            rates::SWING,
            rng,
        );
        step(&mut self.rock_freq, target.rock_freq, rates::GAIT_FREQ, rng);
        step(
            &mut self.log_rock_amp,
            target.log_rock_amp,
            rates::LOG_AMP,
            rng,
        );
        for d in 0..2 {
            step(
                &mut self.log_gyro_scale[d],
                target.log_gyro_scale[d],
                rates::LOG_AMP,
                rng,
            );
            step(
                &mut self.tap_rate[d],
                target.tap_rate[d],
                rates::GAIT_FREQ,
                rng,
            );
            step(
                &mut self.log_tap_amp[d],
                target.log_tap_amp[d],
                rates::LOG_AMP,
                rng,
            );
        }
        step(
            &mut self.gait_asymmetry,
            target.gait_asymmetry,
            rates::HARMONIC,
            rng,
        );
        step(
            &mut self.tremor_offset_watch,
            target.tremor_offset_watch,
            rates::TREMOR_FREQ,
            rng,
        );
    }

    /// Multiplicative gyro amplitude factor for device `dev`, axis `a`.
    pub fn gyro_amp_factor(&self, dev: usize, axis: usize) -> f64 {
        self.log_gyro_amp[dev][axis].exp()
    }

    /// Multiplicative gait-acceleration factor for device `dev`.
    pub fn gait_amp_factor(&self, dev: usize) -> f64 {
        self.log_gait_amp[dev].exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn no_target() -> DriftTarget {
        DriftTarget::default()
    }

    #[test]
    fn new_state_is_identity() {
        let d = DriftState::new();
        assert_eq!(d.pose_pitch, [0.0; 2]);
        assert_eq!(d.gyro_amp_factor(0, 2), 1.0);
        assert_eq!(d.gait_amp_factor(1), 1.0);
    }

    #[test]
    fn zero_days_or_scale_is_noop() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut d = DriftState::new();
        d.advance(&mut rng, 0.0, 1.0, &no_target());
        d.advance(&mut rng, 5.0, 0.0, &no_target());
        assert_eq!(d, DriftState::new());
    }

    #[test]
    fn diffusion_grows_with_time() {
        let rms = |days: f64| {
            let mut acc = 0.0;
            for seed in 0..60 {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut d = DriftState::new();
                d.advance(&mut rng, days, 1.0, &no_target());
                acc += d.pose_pitch[0] * d.pose_pitch[0];
            }
            (acc / 60.0).sqrt()
        };
        assert!(rms(16.0) > 2.0 * rms(1.0));
    }

    #[test]
    fn relaxation_converges_to_target_without_overshoot() {
        let target = DriftTarget {
            pose_pitch: [-0.3, 0.0],
            ..DriftTarget::default()
        };
        let mut mean_by_day = Vec::new();
        for day in [2.0, 8.0, 30.0, 120.0] {
            let mut sum = 0.0;
            for seed in 0..40 {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut d = DriftState::new();
                let mut t = 0.0;
                while t < day {
                    d.advance(&mut rng, 1.0, 2.0, &target);
                    t += 1.0;
                }
                sum += d.pose_pitch[0];
            }
            mean_by_day.push(sum / 40.0);
        }
        // Monotone approach toward −0.3, never beyond it (on average).
        for w in mean_by_day.windows(2) {
            assert!(w[1] <= w[0] + 0.02, "approach is monotone: {mean_by_day:?}");
        }
        assert!(
            mean_by_day[3] > -0.35 && mean_by_day[3] < -0.25,
            "{mean_by_day:?}"
        );
    }

    #[test]
    fn per_axis_amplitudes_relax_independently() {
        let target = DriftTarget {
            log_gyro_amp: [[-0.5, 0.0, 0.5], [0.0; 3]],
            ..DriftTarget::default()
        };
        let mut rng = StdRng::seed_from_u64(9);
        let mut d = DriftState::new();
        for _ in 0..200 {
            d.advance(&mut rng, 1.0, 3.0, &target);
        }
        assert!(d.gyro_amp_factor(0, 0) < 0.75);
        assert!(d.gyro_amp_factor(0, 2) > 1.3);
        assert!((d.gyro_amp_factor(1, 0) - 1.0).abs() < 0.35);
    }

    #[test]
    fn incremental_advance_accumulates() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut d = DriftState::new();
        for _ in 0..14 {
            d.advance(&mut rng, 1.0, 1.0, &no_target());
        }
        assert!(d.pose_pitch[0].abs() > 1e-4);
        assert!(d.gait_amp_factor(1) != 1.0);
    }
}
