use serde::{Deserialize, Serialize};

/// Default sensor sampling rate used throughout the paper (§V-A).
pub const SAMPLE_RATE_HZ: f64 = 50.0;

/// The two devices of the paper's two-device configuration (§IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// The primary device being protected (Nexus 5 in the paper).
    Smartphone,
    /// The auxiliary wearable (Moto 360 in the paper).
    Smartwatch,
}

impl DeviceKind {
    /// Both devices, phone first.
    pub const ALL: [DeviceKind; 2] = [DeviceKind::Smartphone, DeviceKind::Smartwatch];

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            DeviceKind::Smartphone => "smartphone",
            DeviceKind::Smartwatch => "smartwatch",
        }
    }
}

/// Hardware sensors considered in the sensor-selection study (Table II).
///
/// Only [`SensorKind::Accelerometer`] and [`SensorKind::Gyroscope`] survive
/// selection; the others are simulated so the Fisher-score screening can be
/// reproduced (§V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SensorKind {
    /// 3-axis accelerometer (m/s²), includes gravity.
    Accelerometer,
    /// 3-axis gyroscope (rad/s).
    Gyroscope,
    /// 3-axis magnetometer (μT) — environment dominated.
    Magnetometer,
    /// 3-axis orientation pseudo-sensor (rad) — environment dominated.
    Orientation,
    /// Scalar ambient-light sensor (normalised log-lux) — environment
    /// dominated.
    Light,
}

impl SensorKind {
    /// Every simulated sensor, in Table II's order.
    pub const ALL: [SensorKind; 5] = [
        SensorKind::Accelerometer,
        SensorKind::Gyroscope,
        SensorKind::Magnetometer,
        SensorKind::Orientation,
        SensorKind::Light,
    ];

    /// The two sensors selected by the Fisher-score screening (§V-B).
    pub const SELECTED: [SensorKind; 2] = [SensorKind::Accelerometer, SensorKind::Gyroscope];

    /// Short display name used in tables.
    pub fn name(&self) -> &'static str {
        match self {
            SensorKind::Accelerometer => "Acc",
            SensorKind::Gyroscope => "Gyr",
            SensorKind::Magnetometer => "Mag",
            SensorKind::Orientation => "Ori",
            SensorKind::Light => "Light",
        }
    }

    /// Number of axes this sensor reports (3, or 1 for light).
    pub fn num_axes(&self) -> usize {
        match self {
            SensorKind::Light => 1,
            _ => 3,
        }
    }
}

/// A fixed-duration block of samples from every sensor on one device.
///
/// Axis streams are stored as parallel `Vec<f64>`s of equal length
/// (`samples = window_secs × sample_rate`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensorWindow {
    /// Accelerometer x/y/z streams.
    pub accel: [Vec<f64>; 3],
    /// Gyroscope x/y/z streams.
    pub gyro: [Vec<f64>; 3],
    /// Magnetometer x/y/z streams.
    pub mag: [Vec<f64>; 3],
    /// Orientation x/y/z streams.
    pub orientation: [Vec<f64>; 3],
    /// Ambient light stream.
    pub light: Vec<f64>,
}

impl SensorWindow {
    /// Number of samples per stream.
    pub fn len(&self) -> usize {
        self.accel[0].len()
    }

    /// True when the window holds no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrows the axis streams of `sensor` (3 axes; light is replicated on
    /// a single axis and returned as a one-element slice).
    pub fn sensor_axes(&self, sensor: SensorKind) -> Vec<&[f64]> {
        match sensor {
            SensorKind::Accelerometer => self.accel.iter().map(|v| v.as_slice()).collect(),
            SensorKind::Gyroscope => self.gyro.iter().map(|v| v.as_slice()).collect(),
            SensorKind::Magnetometer => self.mag.iter().map(|v| v.as_slice()).collect(),
            SensorKind::Orientation => self.orientation.iter().map(|v| v.as_slice()).collect(),
            SensorKind::Light => vec![self.light.as_slice()],
        }
    }

    /// Magnitude series `√(x²+y²+z²)` of a 3-axis sensor, or the raw stream
    /// for the scalar light sensor (§V-C).
    pub fn magnitude(&self, sensor: SensorKind) -> Vec<f64> {
        let mut out = Vec::new();
        self.magnitude_into(sensor, &mut out);
        out
    }

    /// [`SensorWindow::magnitude`] into a caller-owned buffer (cleared
    /// first), so per-window feature extraction can reuse one allocation
    /// across sensors and windows. Unlike [`SensorWindow::sensor_axes`],
    /// this borrows the axis streams without any intermediate vector.
    pub fn magnitude_into(&self, sensor: SensorKind, out: &mut Vec<f64>) {
        let [x, y, z] = match sensor {
            SensorKind::Accelerometer => &self.accel,
            SensorKind::Gyroscope => &self.gyro,
            SensorKind::Magnetometer => &self.mag,
            SensorKind::Orientation => &self.orientation,
            SensorKind::Light => {
                out.clear();
                out.extend_from_slice(&self.light);
                return;
            }
        };
        smarteryou_dsp::magnitude_series_into(x, y, z, out);
    }

    /// Drops every stream except the accelerometer and gyroscope, freeing
    /// their buffers.
    ///
    /// The production feature pipeline consumes only the two motion sensors
    /// (the §V-B Fisher/KS screening eliminated magnetometer, orientation
    /// and light), so an ingest tier can project windows down to the motion
    /// streams once at parse time and halve the per-window bytes that every
    /// downstream queue, clone and cache level has to carry.
    pub fn retain_motion(&mut self) {
        self.mag = Default::default();
        self.orientation = Default::default();
        self.light = Vec::new();
    }
}

/// Synchronized windows from the smartphone and the smartwatch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DualDeviceWindow {
    /// Smartphone sensors.
    pub phone: SensorWindow,
    /// Smartwatch sensors.
    pub watch: SensorWindow,
}

impl DualDeviceWindow {
    /// Borrows the window of one device.
    pub fn device(&self, device: DeviceKind) -> &SensorWindow {
        match device {
            DeviceKind::Smartphone => &self.phone,
            DeviceKind::Smartwatch => &self.watch,
        }
    }

    /// [`SensorWindow::retain_motion`] on both devices.
    pub fn retain_motion(&mut self) {
        self.phone.retain_motion();
        self.watch.retain_motion();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(n: usize) -> SensorWindow {
        let s = |v: f64| vec![v; n];
        SensorWindow {
            accel: [s(3.0), s(4.0), s(0.0)],
            gyro: [s(0.0), s(0.0), s(1.0)],
            mag: [s(1.0), s(1.0), s(1.0)],
            orientation: [s(0.5), s(0.5), s(0.5)],
            light: s(7.0),
        }
    }

    #[test]
    fn magnitude_combines_axes() {
        let w = window(4);
        assert_eq!(w.magnitude(SensorKind::Accelerometer), vec![5.0; 4]);
        assert_eq!(w.magnitude(SensorKind::Light), vec![7.0; 4]);
    }

    #[test]
    fn axis_counts() {
        assert_eq!(SensorKind::Light.num_axes(), 1);
        assert_eq!(SensorKind::Gyroscope.num_axes(), 3);
        let w = window(2);
        assert_eq!(w.sensor_axes(SensorKind::Magnetometer).len(), 3);
        assert_eq!(w.sensor_axes(SensorKind::Light).len(), 1);
        assert_eq!(w.len(), 2);
        assert!(!w.is_empty());
    }

    #[test]
    fn device_lookup() {
        let w = window(1);
        let dual = DualDeviceWindow {
            phone: w.clone(),
            watch: w,
        };
        assert_eq!(dual.device(DeviceKind::Smartphone).len(), 1);
        assert_eq!(DeviceKind::Smartphone.name(), "smartphone");
    }
}
