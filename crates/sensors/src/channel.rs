//! Simulated device-to-device transport (§IV-C "Protecting data in
//! transit").
//!
//! The paper pairs the smartwatch to the smartphone over Bluetooth with an
//! exchanged initialization key, then encrypts and MACs the sensor frames.
//! No evaluation number depends on the cipher, so this module provides a
//! *functional stand-in* that exercises the same code path — framing,
//! keystream encryption, integrity tag, loss handling — using toy
//! primitives (xorshift keystream, FNV-1a tag).
//!
//! **This is not real cryptography.** A production deployment would use the
//! platform's Bluetooth pairing plus an AEAD; the API here is shaped so such
//! a backend could be dropped in.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Errors surfaced by the simulated channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChannelError {
    /// The frame was dropped by the lossy link.
    Dropped,
    /// The integrity tag did not verify (tampering or key mismatch).
    IntegrityFailure,
    /// The frame is too short to contain a tag.
    Malformed,
}

impl std::fmt::Display for ChannelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChannelError::Dropped => write!(f, "frame dropped by link"),
            ChannelError::IntegrityFailure => write!(f, "integrity check failed"),
            ChannelError::Malformed => write!(f, "malformed frame"),
        }
    }
}

impl std::error::Error for ChannelError {}

/// A paired, keyed channel between the watch and the phone.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SecureChannel {
    key: u64,
    send_counter: u64,
    recv_counter: u64,
}

const TAG_LEN: usize = 8;

impl SecureChannel {
    /// Pairs two endpoints, returning matching channel states (models the
    /// Bluetooth pairing key exchange).
    pub fn pair(rng: &mut StdRng) -> (SecureChannel, SecureChannel) {
        let key: u64 = rng.random();
        let mk = |key| SecureChannel {
            key,
            send_counter: 0,
            recv_counter: 0,
        };
        (mk(key), mk(key))
    }

    /// Creates a channel from an explicit key (e.g. re-derived session key).
    pub fn from_key(key: u64) -> SecureChannel {
        SecureChannel {
            key,
            send_counter: 0,
            recv_counter: 0,
        }
    }

    /// Encrypts and tags a payload, producing a wire frame. The per-frame
    /// counter is mixed into the keystream and the tag, so replayed or
    /// reordered frames fail verification.
    pub fn seal(&mut self, payload: &[u8]) -> Vec<u8> {
        let nonce = self.send_counter;
        self.send_counter += 1;
        let mut frame = Vec::with_capacity(payload.len() + TAG_LEN);
        let mut ks = Keystream::new(self.key, nonce);
        frame.extend(payload.iter().map(|&b| b ^ ks.next_byte()));
        let tag = tag(self.key, nonce, &frame);
        frame.extend_from_slice(&tag.to_le_bytes());
        frame
    }

    /// Verifies and decrypts a wire frame.
    ///
    /// # Errors
    ///
    /// [`ChannelError::Malformed`] for truncated frames,
    /// [`ChannelError::IntegrityFailure`] when the tag does not match (bit
    /// flips, wrong key, replay).
    pub fn open(&mut self, frame: &[u8]) -> Result<Vec<u8>, ChannelError> {
        if frame.len() < TAG_LEN {
            return Err(ChannelError::Malformed);
        }
        let nonce = self.recv_counter;
        let (body, tag_bytes) = frame.split_at(frame.len() - TAG_LEN);
        let expect = tag(self.key, nonce, body);
        let got = u64::from_le_bytes(tag_bytes.try_into().expect("tag is 8 bytes"));
        if expect != got {
            return Err(ChannelError::IntegrityFailure);
        }
        self.recv_counter += 1;
        let mut ks = Keystream::new(self.key, nonce);
        Ok(body.iter().map(|&b| b ^ ks.next_byte()).collect())
    }
}

/// Keyed FNV-1a over (key, nonce, data) — an integrity *stand-in*, not a MAC.
fn tag(key: u64, nonce: u64, data: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64 ^ key.rotate_left(17) ^ nonce;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// xorshift64* keystream seeded by (key, nonce).
struct Keystream {
    state: u64,
    buf: u64,
    avail: u32,
}

impl Keystream {
    fn new(key: u64, nonce: u64) -> Self {
        let state = (key ^ nonce.wrapping_mul(0x9E3779B97F4A7C15)) | 1;
        Keystream {
            state,
            buf: 0,
            avail: 0,
        }
    }

    fn next_byte(&mut self) -> u8 {
        if self.avail == 0 {
            self.state ^= self.state >> 12;
            self.state ^= self.state << 25;
            self.state ^= self.state >> 27;
            self.buf = self.state.wrapping_mul(0x2545F4914F6CDD1D);
            self.avail = 8;
        }
        let b = (self.buf & 0xFF) as u8;
        self.buf >>= 8;
        self.avail -= 1;
        b
    }
}

/// A lossy Bluetooth-like link carrying sealed frames between the devices.
#[derive(Debug, Clone)]
pub struct BluetoothLink {
    loss_probability: f64,
    rng: StdRng,
    delivered: u64,
    dropped: u64,
}

impl BluetoothLink {
    /// Creates a link dropping frames i.i.d. with `loss_probability`.
    ///
    /// # Panics
    ///
    /// Panics if `loss_probability` is outside `[0, 1)`.
    pub fn new(loss_probability: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&loss_probability),
            "loss probability must be in [0, 1)"
        );
        BluetoothLink {
            loss_probability,
            rng: StdRng::seed_from_u64(seed),
            delivered: 0,
            dropped: 0,
        }
    }

    /// Transmits a frame.
    ///
    /// # Errors
    ///
    /// [`ChannelError::Dropped`] when the link loses the frame.
    pub fn transmit(&mut self, frame: Vec<u8>) -> Result<Vec<u8>, ChannelError> {
        if self.rng.random::<f64>() < self.loss_probability {
            self.dropped += 1;
            Err(ChannelError::Dropped)
        } else {
            self.delivered += 1;
            Ok(frame)
        }
    }

    /// `(delivered, dropped)` frame counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.delivered, self.dropped)
    }
}

/// Serializes a sensor sample batch to bytes (little-endian f64s) for
/// transport.
pub fn encode_samples(samples: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(samples.len() * 8);
    for s in samples {
        out.extend_from_slice(&s.to_le_bytes());
    }
    out
}

/// Inverse of [`encode_samples`]; `None` when the byte length is not a
/// multiple of 8.
pub fn decode_samples(bytes: &[u8]) -> Option<Vec<f64>> {
    if !bytes.len().is_multiple_of(8) {
        return None;
    }
    Some(
        bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("chunk of 8")))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paired() -> (SecureChannel, SecureChannel) {
        let mut rng = StdRng::seed_from_u64(42);
        SecureChannel::pair(&mut rng)
    }

    #[test]
    fn roundtrip_preserves_payload() {
        let (mut tx, mut rx) = paired();
        let payload = b"watch accel frame".to_vec();
        let frame = tx.seal(&payload);
        assert_ne!(
            &frame[..payload.len()],
            payload.as_slice(),
            "ciphertext differs"
        );
        assert_eq!(rx.open(&frame).unwrap(), payload);
    }

    #[test]
    fn multiple_frames_in_order() {
        let (mut tx, mut rx) = paired();
        for i in 0..10u8 {
            let frame = tx.seal(&[i, i + 1]);
            assert_eq!(rx.open(&frame).unwrap(), vec![i, i + 1]);
        }
    }

    #[test]
    fn tampering_is_detected() {
        let (mut tx, mut rx) = paired();
        let mut frame = tx.seal(b"data");
        frame[0] ^= 1;
        assert_eq!(rx.open(&frame), Err(ChannelError::IntegrityFailure));
    }

    #[test]
    fn wrong_key_fails() {
        let (mut tx, _) = paired();
        let mut rx = SecureChannel::from_key(12345);
        let frame = tx.seal(b"data");
        assert_eq!(rx.open(&frame), Err(ChannelError::IntegrityFailure));
    }

    #[test]
    fn replay_fails() {
        let (mut tx, mut rx) = paired();
        let frame = tx.seal(b"data");
        assert!(rx.open(&frame).is_ok());
        // Same frame again: receiver counter advanced, tag mismatch.
        assert_eq!(rx.open(&frame), Err(ChannelError::IntegrityFailure));
    }

    #[test]
    fn truncated_frame_is_malformed() {
        let (_, mut rx) = paired();
        assert_eq!(rx.open(&[1, 2, 3]), Err(ChannelError::Malformed));
    }

    #[test]
    fn lossy_link_drops_roughly_at_rate() {
        let mut link = BluetoothLink::new(0.3, 1);
        let mut dropped = 0;
        for _ in 0..1000 {
            if link.transmit(vec![0u8]).is_err() {
                dropped += 1;
            }
        }
        assert!((200..400).contains(&dropped), "dropped {dropped}");
        let (d, l) = link.stats();
        assert_eq!(d + l, 1000);
    }

    #[test]
    fn sample_codec_roundtrips() {
        let samples = vec![0.0, -1.5, 9.81, f64::MAX];
        let bytes = encode_samples(&samples);
        assert_eq!(decode_samples(&bytes).unwrap(), samples);
        assert!(decode_samples(&bytes[1..]).is_none());
    }

    #[test]
    fn end_to_end_sensor_frame_over_lossy_link() {
        let (mut tx, mut rx) = paired();
        let mut link = BluetoothLink::new(0.2, 9);
        let samples: Vec<f64> = (0..300).map(|i| (i as f64 * 0.1).sin()).collect();
        let mut received = 0;
        for _ in 0..50 {
            let frame = tx.seal(&encode_samples(&samples));
            match link.transmit(frame) {
                Ok(f) => {
                    // Frame made it: it must decode exactly.
                    let bytes = rx.open(&f).unwrap();
                    assert_eq!(decode_samples(&bytes).unwrap(), samples);
                    received += 1;
                }
                Err(ChannelError::Dropped) => {
                    // Receiver never saw it; keep counters in sync the way
                    // the real protocol would (sender retransmits with a new
                    // counter; here we just advance the receiver).
                    rx.recv_counter += 1;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(received > 25);
    }
}
