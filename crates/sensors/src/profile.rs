use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::demographics::Demographics;
use crate::rand_util::{log_normal, normal, uniform};

/// Identifier of a simulated participant (index into the population).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct UserId(pub usize);

impl std::fmt::Display for UserId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "user{:02}", self.0)
    }
}

/// Gravitational acceleration, m/s².
pub const GRAVITY: f64 = 9.81;

/// How the user carries the phone while moving — a *discrete* habit that
/// makes the population multimodal (a pocket carry and an in-bag carry are
/// not points on a continuum). Multimodality is what lets a linear
/// one-vs-rest classifier isolate almost every user: real populations are
/// clumpy, not a single Gaussian blob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum CarryMode {
    /// Trouser pocket: steep, tightly coupled to the leg.
    Pocket,
    /// Bag or purse: shallow angle, loosely coupled.
    Bag,
    /// In hand while walking: intermediate, swings with the arm.
    Hand,
}

impl CarryMode {
    /// Mean carry pitch (rad) for this mode.
    pub fn base_pitch(&self) -> f64 {
        match self {
            CarryMode::Pocket => 1.35,
            CarryMode::Bag => 0.55,
            CarryMode::Hand => 0.95,
        }
    }

    /// Gait-to-device coupling factor (how much step energy reaches the
    /// phone).
    pub fn coupling(&self) -> f64 {
        match self {
            CarryMode::Pocket => 1.0,
            CarryMode::Bag => 0.55,
            CarryMode::Hand => 0.8,
        }
    }
}

/// Behavioural parameters of one simulated user.
///
/// These are the stand-in for what the paper measures from real
/// participants: each user is a draw from population-level distributions of
/// biomechanical and habit parameters. The classifiers never see these
/// values — only the sensor streams they generate — so between-user
/// separability emerges exactly the way it does for real data: through the
/// windowed statistical features.
///
/// Parameter groups and the experiment they drive:
///
/// * device *pose* angles (how the phone/watch is held) → accelerometer
///   mean/max features and the high Fisher score of `Acc(x)` (Table II);
/// * *gait* cadence, shape and intensity → frequency-domain features while
///   moving (Fig. 4's window-size sensitivity comes from needing enough DFT
///   resolution to separate cadences);
/// * *micro-gesture* rotation amplitudes → gyroscope features, axis-weighted
///   to reproduce the per-axis Fisher ranking (`Gyr(z)` highest on the
///   phone);
/// * hand *tremor* frequency → secondary stationary-context peaks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserProfile {
    /// Stable identifier.
    pub id: UserId,
    /// Gender and age band (Figure 2 marginals).
    pub demographics: Demographics,
    pub(crate) p: BehaviorParams,
}

/// Raw generative parameters (crate-private: applications interact with
/// generated sensor data, not with the latent user model).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct BehaviorParams {
    // --- shared biomechanics -------------------------------------------
    /// Walking cadence in steps/second (typical 1.4–2.4).
    pub gait_freq: f64,
    /// Log-scale multiplier on all gait oscillation amplitudes.
    pub gait_intensity: f64,
    /// Relative amplitudes of gait harmonics 1–3 (user-specific gait shape).
    pub gait_harmonics: [f64; 3],
    /// Physiological tremor / micro-gesture frequency in Hz.
    pub tremor_freq: f64,
    /// Watch arm-swing frequency as a fraction of step frequency (~0.5).
    pub swing_ratio: f64,

    // --- per device: [phone, watch] ------------------------------------
    /// Holding pitch angle (rad) while stationary.
    pub pose_pitch: [f64; 2],
    /// Holding roll angle (rad) while stationary.
    pub pose_roll: [f64; 2],
    /// Carry pitch angle (rad) while moving (pocket / swinging arm).
    pub pose_pitch_moving: [f64; 2],
    /// Carry roll angle (rad) while moving.
    pub pose_roll_moving: [f64; 2],
    /// Stationary micro-gesture rotation amplitude per gyro axis (rad/s).
    pub gyro_amp: [[f64; 3]; 2],
    /// Moving rotation amplitude per gyro axis (rad/s).
    pub gyro_amp_moving: [[f64; 3]; 2],
    /// Gait acceleration amplitude factor per device (m/s²).
    pub accel_osc_amp: [f64; 2],
    /// Hand micro-tremor acceleration amplitude per device (m/s²).
    pub hand_tremor_amp: [f64; 2],
    /// Multiplier on white sensor noise per device × {accel, gyro} — hand
    /// steadiness / grip stability signature.
    pub noise_factor: [[f64; 2]; 2],
    /// Frequency ratio of the z-axis micro-gesture line to the tremor line.
    pub tremor_z_ratio: f64,
    /// Body-rocking frequency while seated (Hz) — overlaps the vehicle sway
    /// band, which is what confuses the four-context classifier (§V-E).
    pub rock_freq: f64,
    /// Body-rocking acceleration amplitude (m/s²).
    pub rock_amp: f64,
    /// Overall per-device gyroscope energy factor (grip/gesture vigour).
    pub gyro_scale: [f64; 2],
    /// Tap/flick rate per device (Hz): phone typing taps, watch wrist
    /// flicks.
    pub tap_rate: [f64; 2],
    /// Tap/flick impulse amplitude per device (m/s²).
    pub tap_amp: [f64; 2],
    /// Relative amplitude of the gait subharmonic at f/2 (left–right step
    /// asymmetry).
    pub gait_asymmetry: f64,
    /// Watch tremor-frequency offset relative to the phone hand (Hz).
    pub tremor_offset_watch: f64,
    /// Discrete phone carry habit while moving.
    pub carry_mode: CarryMode,
    /// Small user-specific ambient-light factor for the watch (wrist pose).
    pub light_offset: f64,
}

/// Samples from a two-mode (habit) distribution in log space: most habits
/// are categorical — typing style, strap tightness, gesture vigour — with
/// modest within-mode spread. Categorical habits make the population
/// *clumpy*, which is what lets a linear one-vs-rest classifier isolate
/// nearly every user (points on a habit hypercube are all extreme points).
fn bimodal_log<R: rand::Rng + ?Sized>(r: &mut R, lo: f64, hi: f64, within: f64, p_hi: f64) -> f64 {
    let mode = if r.random::<f64>() < p_hi { hi } else { lo };
    crate::rand_util::log_normal(r, mode, within)
}

/// Population-level calibration constants.
///
/// The per-axis log-spreads of the gyro amplitudes are chosen so the
/// Fisher-score ranking of Table II is reproduced: the between-user variance
/// of a log-normal amplitude is set against the per-window intensity jitter
/// applied in the generator (σ ≈ 0.25 in log scale), giving
/// `FS ≈ (σ_user / 0.25)²`.
pub(crate) mod calibration {
    /// Per-window log-intensity jitter shared by all oscillatory components.
    pub const INTENSITY_SIGMA: f64 = 0.25;

    /// Phone gyro per-axis between-user log-spread → FS ≈ [0.6, 1.1, 4.1].
    pub const PHONE_GYRO_SIGMA: [f64; 3] = [0.19, 0.26, 0.50];
    /// Watch gyro per-axis between-user log-spread → FS ≈ [0.24, 1.1, 0.6].
    pub const WATCH_GYRO_SIGMA: [f64; 3] = [0.12, 0.26, 0.19];
    /// Phone gyro base amplitudes (rad/s) while stationary.
    pub const PHONE_GYRO_BASE: [f64; 3] = [0.06, 0.09, 0.12];
    /// Watch gyro base amplitudes (rad/s) while stationary.
    pub const WATCH_GYRO_BASE: [f64; 3] = [0.08, 0.10, 0.09];

    /// Pitch/roll population spread (rad): phone pitch drives `Acc(x)`'s
    /// high Fisher score; roll is tighter.
    pub const PHONE_PITCH_SIGMA: f64 = 0.18;
    pub const PHONE_ROLL_SIGMA: f64 = 0.10;
    pub const WATCH_PITCH_SIGMA: f64 = 0.20;
    pub const WATCH_ROLL_SIGMA: f64 = 0.09;

    /// Mean holding pitch (rad above horizontal).
    pub const PHONE_PITCH_MEAN: f64 = 0.55;
    pub const WATCH_PITCH_MEAN: f64 = 0.35;

    /// Gait cadence distribution (Hz).
    pub const GAIT_FREQ_MEAN: f64 = 1.9;
    pub const GAIT_FREQ_SIGMA: f64 = 0.22;

    /// Tremor frequency distribution (Hz).
    pub const TREMOR_FREQ_MEAN: f64 = 4.2;
    pub const TREMOR_FREQ_SIGMA: f64 = 0.9;

    /// Gait acceleration base amplitude (m/s²): phone (pocket/hand), watch.
    pub const GAIT_ACCEL_BASE: [f64; 2] = [1.6, 1.1];
    /// Between-user log-spread of gait amplitude.
    pub const GAIT_ACCEL_SIGMA: f64 = 0.30;

    /// Hand micro-tremor acceleration base amplitude (m/s²).
    pub const HAND_TREMOR_BASE: f64 = 0.18;

    /// Body-rocking frequency distribution (Hz).
    pub const ROCK_FREQ_MEAN: f64 = 0.55;
    pub const ROCK_FREQ_SIGMA: f64 = 0.12;
    /// Body-rocking base amplitude (m/s²) and log-spread.
    pub const ROCK_AMP_BASE: f64 = 0.08;
    pub const ROCK_AMP_SIGMA: f64 = 0.40;
    /// Tap/flick rate distributions (Hz): phone, watch.
    pub const TAP_RATE_MEAN: [f64; 2] = [2.5, 1.6];
    pub const TAP_RATE_SIGMA: [f64; 2] = [0.7, 0.5];
    /// Phone typing-style modes (Hz): hunt-and-peck vs two-thumb.
    pub const TAP_MODES: [f64; 2] = [1.6, 3.4];
    pub const TAP_MODE_SIGMA: f64 = 0.28;
    /// Log-space habit modes (± around 1.0) and within-mode spread.
    pub const HABIT_MODE: f64 = 0.33;
    pub const HABIT_SIGMA: f64 = 0.13;
    /// Tap impulse base amplitudes (m/s²) and log-spread.
    pub const TAP_AMP_BASE: [f64; 2] = [0.35, 0.25];
    pub const TAP_AMP_SIGMA: f64 = 0.45;
    /// Gait subharmonic (asymmetry) distribution.
    pub const ASYM_MEAN: f64 = 0.12;
    pub const ASYM_SIGMA: f64 = 0.08;
    /// Watch tremor offset spread (Hz).
    pub const TREMOR_OFFSET_SIGMA: f64 = 0.5;
}

impl UserProfile {
    /// Draws a user from the population distributions; deterministic in
    /// `(id, seed)`.
    pub fn generate(id: UserId, demographics: Demographics, seed: u64) -> Self {
        use calibration as cal;
        // Independent stream per user: never couples users through RNG order.
        let mut rng = StdRng::seed_from_u64(seed ^ (id.0 as u64).wrapping_mul(0x9E3779B97F4A7C15));
        let r = &mut rng;

        let gyro = |r: &mut StdRng, base: [f64; 3], sigma: [f64; 3]| {
            [
                base[0] * log_normal(r, 0.0, sigma[0]),
                base[1] * log_normal(r, 0.0, sigma[1]),
                base[2] * log_normal(r, 0.0, sigma[2]),
            ]
        };
        let phone_gyro = gyro(r, cal::PHONE_GYRO_BASE, cal::PHONE_GYRO_SIGMA);
        let watch_gyro = gyro(r, cal::WATCH_GYRO_BASE, cal::WATCH_GYRO_SIGMA);
        let carry_mode = {
            let u: f64 = r.random();
            if u < 0.5 {
                CarryMode::Pocket
            } else if u < 0.75 {
                CarryMode::Bag
            } else {
                CarryMode::Hand
            }
        };
        let carry_base = carry_mode.base_pitch();
        // Moving gestures scale up the same per-user amplitudes: walking adds
        // rotational energy but preserves the user's axis signature.
        let scale3 = |a: [f64; 3], k: f64| [a[0] * k, a[1] * k, a[2] * k];

        let p = BehaviorParams {
            gait_freq: normal(r, cal::GAIT_FREQ_MEAN, cal::GAIT_FREQ_SIGMA).clamp(1.3, 2.6),
            gait_intensity: log_normal(r, 0.0, cal::GAIT_ACCEL_SIGMA),
            gait_harmonics: [1.0, uniform(r, 0.25, 0.55), uniform(r, 0.08, 0.25)],
            tremor_freq: normal(r, cal::TREMOR_FREQ_MEAN, cal::TREMOR_FREQ_SIGMA).clamp(2.5, 7.0),
            swing_ratio: normal(r, 0.5, 0.04).clamp(0.38, 0.62),
            pose_pitch: [
                normal(r, cal::PHONE_PITCH_MEAN, cal::PHONE_PITCH_SIGMA),
                normal(r, cal::WATCH_PITCH_MEAN, cal::WATCH_PITCH_SIGMA),
            ],
            pose_roll: [
                normal(r, 0.08, cal::PHONE_ROLL_SIGMA),
                normal(r, 0.05, cal::WATCH_ROLL_SIGMA),
            ],
            pose_pitch_moving: [
                // Around the discrete carry mode's base angle.
                normal(r, carry_base, 0.14),
                normal(r, 0.15, 0.30),
            ],
            pose_roll_moving: [normal(r, 0.1, 0.26), normal(r, 0.1, 0.22)],
            gyro_amp: [phone_gyro, watch_gyro],
            gyro_amp_moving: [scale3(phone_gyro, 3.0), scale3(watch_gyro, 4.0)],
            accel_osc_amp: [
                cal::GAIT_ACCEL_BASE[0] * log_normal(r, 0.0, cal::GAIT_ACCEL_SIGMA),
                cal::GAIT_ACCEL_BASE[1] * log_normal(r, 0.0, cal::GAIT_ACCEL_SIGMA),
            ],
            hand_tremor_amp: [
                cal::HAND_TREMOR_BASE
                    * bimodal_log(r, -cal::HABIT_MODE, cal::HABIT_MODE, cal::HABIT_SIGMA, 0.5),
                cal::HAND_TREMOR_BASE
                    * bimodal_log(r, -cal::HABIT_MODE, cal::HABIT_MODE, cal::HABIT_SIGMA, 0.5),
            ],
            noise_factor: {
                // Watch strap tightness is one habit shared by both watch
                // sensors; phone grip steadiness another.
                let grip = bimodal_log(r, -cal::HABIT_MODE, cal::HABIT_MODE, cal::HABIT_SIGMA, 0.5);
                let strap =
                    bimodal_log(r, -cal::HABIT_MODE, cal::HABIT_MODE, cal::HABIT_SIGMA, 0.45);
                [
                    [
                        grip * log_normal(r, 0.0, 0.10),
                        grip * log_normal(r, 0.0, 0.10),
                    ],
                    [
                        strap * log_normal(r, 0.0, 0.10),
                        strap * log_normal(r, 0.0, 0.10),
                    ],
                ]
            },
            tremor_z_ratio: uniform(r, 0.4, 0.7),
            tap_rate: [
                {
                    // Typing style: hunt-and-peck vs two-thumb.
                    let mode = cal::TAP_MODES[usize::from(r.random::<f64>() < 0.5)];
                    normal(r, mode, cal::TAP_MODE_SIGMA).clamp(0.8, 4.5)
                },
                normal(r, cal::TAP_RATE_MEAN[1], cal::TAP_RATE_SIGMA[1]).clamp(0.5, 3.0),
            ],
            tap_amp: [
                cal::TAP_AMP_BASE[0] * log_normal(r, 0.0, cal::TAP_AMP_SIGMA),
                cal::TAP_AMP_BASE[1] * log_normal(r, 0.0, cal::TAP_AMP_SIGMA),
            ],
            gait_asymmetry: normal(r, cal::ASYM_MEAN, cal::ASYM_SIGMA).clamp(0.01, 0.4),
            tremor_offset_watch: normal(r, 0.0, cal::TREMOR_OFFSET_SIGMA),
            carry_mode,
            rock_freq: normal(r, cal::ROCK_FREQ_MEAN, cal::ROCK_FREQ_SIGMA).clamp(0.3, 0.8),
            rock_amp: cal::ROCK_AMP_BASE * log_normal(r, 0.0, cal::ROCK_AMP_SIGMA),
            gyro_scale: [
                bimodal_log(r, -cal::HABIT_MODE, cal::HABIT_MODE, cal::HABIT_SIGMA, 0.5),
                bimodal_log(r, -cal::HABIT_MODE, cal::HABIT_MODE, cal::HABIT_SIGMA, 0.5),
            ],
            light_offset: normal(r, 0.0, 0.15),
        };
        UserProfile {
            id,
            demographics,
            p,
        }
    }

    /// Walking cadence in Hz (exposed for analysis/testing; the
    /// authentication pipeline never reads it).
    pub fn gait_frequency(&self) -> f64 {
        self.p.gait_freq
    }

    /// Per-parameter habituation pull toward the population norm (see
    /// [`crate::DriftState`]): users whose carrying angles or gesture
    /// energy sit far from typical ergonomics regress toward them over
    /// time, which is what erodes the authentication margin in Figures 5
    /// and 7.
    pub(crate) fn drift_bias(&self) -> crate::drift::DriftTarget {
        use calibration as cal;
        let mut t = crate::drift::DriftTarget::default();
        for d in 0..2 {
            let pitch_mean = [cal::PHONE_PITCH_MEAN, cal::WATCH_PITCH_MEAN][d];
            t.pose_pitch[d] = pitch_mean - self.p.pose_pitch[d];
            let roll_mean = [0.08, 0.05][d];
            t.pose_roll[d] = roll_mean - self.p.pose_roll[d];
            let pitch_moving_mean = [1.2, 0.15][d];
            t.pose_pitch_moving[d] = pitch_moving_mean - self.p.pose_pitch_moving[d];
            let roll_moving_mean = 0.1;
            t.pose_roll_moving[d] = roll_moving_mean - self.p.pose_roll_moving[d];
            let base = [cal::PHONE_GYRO_BASE, cal::WATCH_GYRO_BASE][d];
            for (a, &b) in base.iter().enumerate() {
                t.log_gyro_amp[d][a] = -(self.p.gyro_amp[d][a] / b).ln();
            }
            t.log_gait_amp[d] = -(self.p.accel_osc_amp[d] / cal::GAIT_ACCEL_BASE[d]).ln();
        }
        // Habituation settles *within* a habit mode: the log targets pull
        // toward the nearest mode centre, not the global mean — users do not
        // switch typing style or re-strap their watch because of drift.
        let nearest_mode = |v: f64| {
            if v >= 0.0 {
                cal::HABIT_MODE
            } else {
                -cal::HABIT_MODE
            }
        };
        for d in 0..2 {
            let lt = (self.p.hand_tremor_amp[d] / cal::HAND_TREMOR_BASE).ln();
            t.log_hand_tremor[d] = nearest_mode(lt) - lt;
            for sens in 0..2 {
                let ln = self.p.noise_factor[d][sens].ln();
                t.log_noise[d][sens] = nearest_mode(ln) - ln;
            }
        }
        t.tremor_z_ratio = 0.55 - self.p.tremor_z_ratio;
        t.rock_freq = cal::ROCK_FREQ_MEAN - self.p.rock_freq;
        // Tap rate relaxes toward the user's typing-style mode.
        let tap_mode = if self.p.tap_rate[0] >= 2.5 {
            cal::TAP_MODES[1]
        } else {
            cal::TAP_MODES[0]
        };
        t.tap_rate[0] = tap_mode - self.p.tap_rate[0];
        t.tap_rate[1] = cal::TAP_RATE_MEAN[1] - self.p.tap_rate[1];
        for d in 0..2 {
            t.log_tap_amp[d] = -(self.p.tap_amp[d] / cal::TAP_AMP_BASE[d]).ln();
        }
        t.gait_asymmetry = cal::ASYM_MEAN - self.p.gait_asymmetry;
        t.tremor_offset_watch = -self.p.tremor_offset_watch;
        // Users keep their carry mode; the moving pitch relaxes toward the
        // *mode's* base, not the global mean.
        t.pose_pitch_moving[0] = self.p.carry_mode.base_pitch() - self.p.pose_pitch_moving[0];
        t.log_rock_amp = -(self.p.rock_amp / cal::ROCK_AMP_BASE).ln();
        for d in 0..2 {
            let lg = self.p.gyro_scale[d].ln();
            t.log_gyro_scale[d] = nearest_mode(lg) - lg;
        }
        t.gait_freq = cal::GAIT_FREQ_MEAN - self.p.gait_freq;
        t.tremor_freq = cal::TREMOR_FREQ_MEAN - self.p.tremor_freq;
        // Harmonic-shape and arm-swing norms are the midpoints of their
        // generation ranges.
        t.gait_harmonics = [
            0.40 - self.p.gait_harmonics[1],
            0.165 - self.p.gait_harmonics[2],
        ];
        t.swing_ratio = 0.5 - self.p.swing_ratio;
        t
    }
}

/// Draws a fresh RNG for a (user, purpose) pair, decoupling streams.
pub(crate) fn derive_rng(seed: u64, user: UserId, purpose: u64) -> StdRng {
    StdRng::seed_from_u64(
        seed.wrapping_mul(0x9E3779B97F4A7C15)
            ^ (user.0 as u64).wrapping_mul(0xD1B54A32D192ED03)
            ^ purpose.wrapping_mul(0x2545F4914F6CDD1D),
    )
}

/// Convenience used by tests: any RNG-free quick profile.
#[cfg(test)]
pub(crate) fn test_profile(id: usize) -> UserProfile {
    use crate::demographics::{AgeBand, Gender};
    UserProfile::generate(
        UserId(id),
        Demographics {
            gender: Gender::Female,
            age: AgeBand::From20To25,
        },
        42,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demographics::{AgeBand, Gender};

    fn demo() -> Demographics {
        Demographics {
            gender: Gender::Male,
            age: AgeBand::From25To30,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = UserProfile::generate(UserId(3), demo(), 7);
        let b = UserProfile::generate(UserId(3), demo(), 7);
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_users_have_distinct_parameters() {
        let a = UserProfile::generate(UserId(0), demo(), 7);
        let b = UserProfile::generate(UserId(1), demo(), 7);
        assert_ne!(a.p, b.p);
        assert!((a.p.gait_freq - b.p.gait_freq).abs() > 1e-6);
    }

    #[test]
    fn parameters_are_physically_plausible() {
        for i in 0..50 {
            let u = UserProfile::generate(UserId(i), demo(), 99);
            assert!(
                (1.3..=2.6).contains(&u.p.gait_freq),
                "cadence {}",
                u.p.gait_freq
            );
            assert!((2.5..=7.0).contains(&u.p.tremor_freq));
            assert!(u.p.accel_osc_amp.iter().all(|&a| a > 0.0));
            assert!(u.p.gyro_amp.iter().flatten().all(|&a| a > 0.0));
            assert!(u.p.gait_harmonics[0] >= u.p.gait_harmonics[1]);
            assert!(u.p.gait_harmonics[1] >= u.p.gait_harmonics[2]);
        }
    }

    #[test]
    fn population_spread_of_cadence_matches_calibration() {
        let freqs: Vec<f64> = (0..400)
            .map(|i| UserProfile::generate(UserId(i), demo(), 5).p.gait_freq)
            .collect();
        let mean = freqs.iter().sum::<f64>() / freqs.len() as f64;
        assert!(
            (mean - calibration::GAIT_FREQ_MEAN).abs() < 0.05,
            "mean {mean}"
        );
    }

    #[test]
    fn user_id_displays() {
        assert_eq!(UserId(4).to_string(), "user04");
    }
}
