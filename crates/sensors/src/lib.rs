//! Synthetic smartphone + smartwatch sensor substrate for the SmarterYou
//! reproduction.
//!
//! The original paper evaluates on two weeks of free-form sensor data from
//! 35 human participants carrying a Nexus 5 and a Moto 360 — data we do not
//! have. This crate substitutes a **generative user population model**: each
//! simulated user is a draw of biomechanical and habit parameters (gait
//! cadence and shape, device pose, micro-gesture energy, tremor), and sensor
//! windows are synthesized from those parameters plus session effects,
//! environmental noise, behavioural drift and occasional outliers. See
//! `DESIGN.md` for why each substitution preserves the behaviour the paper
//! measures.
//!
//! Main entry points:
//!
//! * [`Population`] — generate the 35-participant study population
//!   (Figure 2 demographics).
//! * [`TraceGenerator`] / [`UsageSimulator`] — produce labelled
//!   [`DualDeviceWindow`]s across sessions and days.
//! * [`MimicryAttacker`] — masquerading adversaries for the §V-G attack.
//! * [`SecureChannel`] / [`BluetoothLink`] — the simulated transport of
//!   §IV-C.
//! * [`PowerModel`] — the battery accounting behind Table VIII.
//!
//! # Example
//!
//! ```
//! use smarteryou_sensors::{Population, RawContext, TraceGenerator, WindowSpec};
//!
//! let population = Population::generate(35, 42);
//! let owner = population.users()[0].clone();
//! let mut gen = TraceGenerator::new(owner, 7);
//! let windows = gen.generate_windows(RawContext::MovingAround, WindowSpec::default(), 10);
//! assert_eq!(windows.len(), 10);
//! ```

mod attacker;
mod battery;
mod channel;
mod context;
mod demographics;
mod drift;
mod generator;
mod population;
mod profile;
pub(crate) mod rand_util;
mod session;
mod types;

pub use attacker::MimicryAttacker;
pub use battery::{PowerModel, PowerScenario};
pub use channel::{decode_samples, encode_samples, BluetoothLink, ChannelError, SecureChannel};
pub use context::{RawContext, UsageContext};
pub use demographics::{
    assign_demographics, AgeBand, Demographics, Gender, AGE_COUNTS, GENDER_COUNTS,
};
pub use drift::{DriftState, DriftTarget};
pub use generator::{GeneratorConfig, TraceGenerator, WindowSpec};
pub use population::Population;
pub use profile::{UserId, UserProfile, GRAVITY};
pub use session::{LabeledWindow, UsageSchedule, UsageSimulator};
pub use types::{DeviceKind, DualDeviceWindow, SensorKind, SensorWindow, SAMPLE_RATE_HZ};
