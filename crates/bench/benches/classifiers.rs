//! Criterion bench: fit/predict cost of the four Table VI algorithms on a
//! deployed-scale training set — the computational side of the §V-F2
//! algorithm choice (KRR picked over SVM largely on cost).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smarteryou_linalg::Matrix;
use smarteryou_ml::Algorithm;

fn dataset(n: usize, m: usize) -> (Matrix, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(7);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let class = if i % 2 == 0 { 1.0 } else { -1.0 };
            (0..m)
                .map(|j| class * ((j % 5) as f64 * 0.3 + 0.5) + rng.random::<f64>() - 0.5)
                .collect()
        })
        .collect();
    let y = (0..n)
        .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
        .collect();
    (Matrix::from_rows(&rows).unwrap(), y)
}

fn bench_classifiers(c: &mut Criterion) {
    let (x, y) = dataset(720, 28);
    let mut group = c.benchmark_group("fit_720x28");
    // SMO is orders of magnitude slower; keep sample counts workable.
    group.sample_size(10);
    for alg in Algorithm::ALL {
        group.bench_function(alg.name(), |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                alg.fit(&x, &y, &mut rng).unwrap()
            })
        });
    }
    group.finish();

    let mut rng = StdRng::seed_from_u64(1);
    let models: Vec<_> = Algorithm::ALL
        .iter()
        .map(|a| (a.name(), a.fit(&x, &y, &mut rng).unwrap()))
        .collect();
    let probe = x.row(0).to_vec();
    let mut group = c.benchmark_group("predict_one");
    for (name, model) in &models {
        group.bench_function(*name, |b| {
            b.iter(|| model.decision(std::hint::black_box(&probe)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_classifiers);
criterion_main!(benches);
