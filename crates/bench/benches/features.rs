//! Criterion bench: per-window feature extraction (Eqs. 1–4) — the cost
//! the phone pays every 6 seconds during continuous authentication.

use criterion::{criterion_group, criterion_main, Criterion};
use smarteryou_core::{DeviceSet, FeatureExtractor};
use smarteryou_sensors::{Population, RawContext, TraceGenerator, WindowSpec};

fn bench_features(c: &mut Criterion) {
    let owner = Population::generate(1, 7).users()[0].clone();
    let mut gen = TraceGenerator::new(owner, 3);
    let window = gen
        .generate_windows(RawContext::MovingAround, WindowSpec::default(), 1)
        .pop()
        .unwrap();
    let extractor = FeatureExtractor::paper_default(50.0);

    c.bench_function("auth_features_combined_6s", |b| {
        b.iter(|| extractor.auth_features(std::hint::black_box(&window), DeviceSet::Combined))
    });
    c.bench_function("auth_features_phone_6s", |b| {
        b.iter(|| extractor.auth_features(std::hint::black_box(&window), DeviceSet::PhoneOnly))
    });
    c.bench_function("context_features_6s", |b| {
        b.iter(|| extractor.context_features(std::hint::black_box(&window)))
    });
}

criterion_group!(benches, bench_features);
criterion_main!(benches);
