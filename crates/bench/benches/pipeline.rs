//! Criterion bench: the full per-window authentication path — feature
//! extraction → context detection → KRR decision. The paper reports the
//! whole chain at <21 ms on a Nexus 5 (§V-F4).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use smarteryou_core::{
    ContextDetector, ContextDetectorConfig, DeviceSet, FeatureExtractor, SmarterYou, SystemConfig,
    SystemPhase, TrainingServer,
};
use smarteryou_sensors::{Population, RawContext, TraceGenerator, WindowSpec};

fn build_system() -> (SmarterYou, TraceGenerator, WindowSpec) {
    let population = Population::generate(8, 5);
    let owner = population.users()[0].clone();
    let cfg = SystemConfig::paper_default().with_data_size(120);
    let spec = WindowSpec::from_seconds(cfg.window_secs(), cfg.sample_rate());
    let extractor = FeatureExtractor::paper_default(cfg.sample_rate());

    let mut ctx_features = Vec::new();
    let mut ctx_labels = Vec::new();
    let mut server = TrainingServer::new();
    for user in &population.users()[1..] {
        let mut gen = TraceGenerator::new(user.clone(), 9);
        for raw in [RawContext::SittingStanding, RawContext::MovingAround] {
            let windows = gen.generate_windows(raw, spec, 25);
            for w in &windows {
                ctx_features.push(extractor.context_features(w));
                ctx_labels.push(raw.coarse());
            }
            server.contribute(
                raw.coarse(),
                windows
                    .iter()
                    .map(|w| extractor.auth_features(w, DeviceSet::Combined)),
            );
        }
    }
    let mut rng = StdRng::seed_from_u64(3);
    let detector = ContextDetector::train(
        extractor,
        &ctx_features,
        &ctx_labels,
        ContextDetectorConfig::default(),
        &mut rng,
    )
    .unwrap();
    let mut system = SmarterYou::new(cfg, detector, Arc::new(Mutex::new(server)), 1).unwrap();

    // Enroll the owner.
    let mut gen = TraceGenerator::new(owner, 21);
    let mut s = 0;
    while system.phase() == SystemPhase::Enrollment {
        let ctx = if s % 2 == 0 {
            RawContext::SittingStanding
        } else {
            RawContext::MovingAround
        };
        s += 1;
        for w in gen.generate_windows(ctx, spec, 10) {
            system.process_window(&w).unwrap();
        }
    }
    (system, gen, spec)
}

fn bench_pipeline(c: &mut Criterion) {
    let (mut system, mut gen, spec) = build_system();
    gen.begin_session(RawContext::SittingStanding);
    let window = gen.next_window(spec);

    c.bench_function("pipeline_authenticate_one_window", |b| {
        b.iter(|| {
            system
                .process_window(std::hint::black_box(&window))
                .unwrap()
        })
    });

    c.bench_function("generator_one_window_6s", |b| {
        b.iter(|| gen.next_window(spec))
    });
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
