//! Criterion bench: KRR training in primal (Eq. 7) vs dual (Eq. 6) form at
//! the paper's deployed scale (N = 720, M = 28), plus prediction cost.
//! This is the §V-H1 complexity claim as a benchmark.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smarteryou_linalg::Matrix;
use smarteryou_ml::{BinaryClassifier, KernelRidge, KrrSolver};

/// Synthetic but realistically scaled binary dataset.
fn dataset(n: usize, m: usize, seed: u64) -> (Matrix, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let class = if i % 2 == 0 { 1.0 } else { -1.0 };
            (0..m)
                .map(|j| class * (j as f64 * 0.1 + 1.0) + rng.random::<f64>() * 2.0 - 1.0)
                .collect()
        })
        .collect();
    let y: Vec<f64> = (0..n)
        .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
        .collect();
    (Matrix::from_rows(&rows).unwrap(), y)
}

fn bench_krr(c: &mut Criterion) {
    let mut group = c.benchmark_group("krr_train");
    for &n in &[200usize, 720] {
        let (x, y) = dataset(n, 28, 42);
        group.bench_with_input(BenchmarkId::new("primal_m28", n), &n, |b, _| {
            b.iter(|| {
                KernelRidge::new(1.0)
                    .with_solver(KrrSolver::Primal)
                    .fit(&x, &y)
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("dual_m28", n), &n, |b, _| {
            b.iter(|| {
                KernelRidge::new(1.0)
                    .with_solver(KrrSolver::Dual)
                    .fit(&x, &y)
                    .unwrap()
            })
        });
    }
    group.finish();

    let (x, y) = dataset(720, 28, 42);
    let model = KernelRidge::new(1.0).fit(&x, &y).unwrap();
    let probe: Vec<f64> = x.row(0).to_vec();
    c.bench_function("krr_predict_one_window", |b| {
        b.iter(|| model.decision(std::hint::black_box(&probe)))
    });
}

criterion_group!(benches, bench_krr);
criterion_main!(benches);
