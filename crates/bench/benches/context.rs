//! Criterion bench: context detection (random-forest predict) — must stay
//! far under the paper's reported <3 ms per window (§V-E).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use smarteryou_core::{ContextDetector, ContextDetectorConfig, FeatureExtractor};
use smarteryou_sensors::{Population, RawContext, TraceGenerator, WindowSpec};

fn bench_context(c: &mut Criterion) {
    let population = Population::generate(6, 11);
    let extractor = FeatureExtractor::paper_default(50.0);
    let spec = WindowSpec::from_seconds(2.0, 50.0);
    let mut features = Vec::new();
    let mut labels = Vec::new();
    for user in population.iter() {
        let mut gen = TraceGenerator::new(user.clone(), 13);
        for ctx in [RawContext::SittingStanding, RawContext::MovingAround] {
            for w in gen.generate_windows(ctx, spec, 20) {
                features.push(extractor.context_features(&w));
                labels.push(ctx.coarse());
            }
        }
    }
    let mut rng = StdRng::seed_from_u64(17);
    let detector = ContextDetector::train(
        extractor.clone(),
        &features,
        &labels,
        ContextDetectorConfig::default(),
        &mut rng,
    )
    .unwrap();

    let probe = features[0].clone();
    c.bench_function("context_detect_from_features", |b| {
        b.iter(|| detector.detect_from_features(std::hint::black_box(&probe)))
    });

    let mut gen = TraceGenerator::new(population.users()[0].clone(), 19);
    let window = gen
        .generate_windows(RawContext::MovingAround, WindowSpec::default(), 1)
        .pop()
        .unwrap();
    c.bench_function("context_detect_full_window", |b| {
        b.iter(|| detector.detect(std::hint::black_box(&window)))
    });
}

criterion_group!(benches, bench_context);
criterion_main!(benches);
