//! Criterion bench for the fleet engine: per-tick latency and windows/sec
//! at 100 and 1 000 enrolled users. The `fleet` binary extends the sweep to
//! 10 000 users with explicit throughput rows.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smarteryou_bench::fleet::FleetFixture;

fn bench_fleet(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_tick");
    group.sample_size(10);
    for users in [100usize, 1_000] {
        let mut fixture = FleetFixture::build(users, 0xF1EE7).expect("fixture builds");
        // Warm-up.
        fixture.submit_tick(1);
        fixture.tick();

        group.bench_with_input(
            BenchmarkId::new("one_window_per_user", users),
            &users,
            |b, _| {
                b.iter(|| {
                    fixture.submit_tick(1);
                    fixture.tick()
                })
            },
        );

        // Explicit throughput row so `cargo bench` reports windows/sec for
        // the perf baseline (the shim criterion prints iter/s, not items/s).
        let ticks = 5;
        let mut windows = 0usize;
        let start = Instant::now();
        for _ in 0..ticks {
            windows += fixture.submit_tick(1);
            fixture.tick();
        }
        let throughput = windows as f64 / start.elapsed().as_secs_f64();
        println!("fleet_tick/windows_per_sec/{users}: {throughput:.0} windows/sec");
    }
    group.finish();
}

criterion_group!(benches, bench_fleet);
criterion_main!(benches);
