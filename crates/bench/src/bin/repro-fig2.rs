//! Reproduces **Figure 2**: demographics of the 35 simulated participants.

use smarteryou_bench::{compare_row, header, repro_config};
use smarteryou_sensors::{AgeBand, Population, AGE_COUNTS, GENDER_COUNTS};

fn main() {
    let cfg = repro_config();
    header("Figure 2", "participant demographics");
    let population = Population::generate(cfg.num_users, cfg.seed);
    let (female, male) = population.gender_counts();
    compare_row("female participants", GENDER_COUNTS.0, female);
    compare_row("male participants", GENDER_COUNTS.1, male);
    let hist = population.age_histogram();
    for ((band, &paper), measured) in AgeBand::ALL.iter().zip(&AGE_COUNTS).zip(hist) {
        compare_row(&format!("age {}", band.label()), paper, measured);
    }
}
