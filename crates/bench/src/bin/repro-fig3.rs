//! Reproduces **Figure 3**: KS-test p-value box plots per candidate feature
//! on both devices (the §V-C feature-quality screening). The paper's
//! conclusion: `accPeak2 f` and `gyrPeak2 f` are "bad" features — most user
//! pairs are not significantly different — and are dropped.

use smarteryou_bench::{candidate_feature_matrices, collect_raw_windows, header, repro_config};
use smarteryou_core::selection::{ks_feature_quality, KS_ALPHA};
use smarteryou_sensors::{DeviceKind, RawContext};

fn main() {
    let cfg = repro_config();
    header("Figure 3", "KS test on sensor features (p-value box plots)");
    let (sessions, per_session) = if smarteryou_bench::quick_mode() {
        (6, 4)
    } else {
        (14, 6)
    };
    // Free-form mix: both contexts contribute windows, like the paper's
    // two-week recordings.
    let mut windows = collect_raw_windows(&cfg, RawContext::SittingStanding, sessions, per_session);
    for (user, extra) in windows.iter_mut().zip(collect_raw_windows(
        &cfg,
        RawContext::MovingAround,
        sessions,
        per_session,
    )) {
        user.extend(extra);
    }

    for device in DeviceKind::ALL {
        println!("\n--- {} ---", device.name());
        println!(
            "{:<14} {:>9} {:>9} {:>9}  {:>12}  verdict",
            "feature", "q1", "median", "q3", "% pairs<0.05"
        );
        let matrices = candidate_feature_matrices(&windows, device, cfg.sample_rate);
        for q in ks_feature_quality(&matrices) {
            println!(
                "{:<14} {:>9.1e} {:>9.1e} {:>9.1e}  {:>11.1}%  {}",
                q.label,
                q.p_values.q1.max(1e-12),
                q.p_values.median.max(1e-12),
                q.p_values.q3.max(1e-12),
                100.0 * q.fraction_significant,
                if q.is_bad() { "BAD (drop)" } else { "good" }
            );
        }
    }
    println!(
        "\nPaper's verdict: only accPeak2 f / gyrPeak2 f sit above α = {KS_ALPHA}\n\
         on both devices and are dropped from the feature set."
    );
}
