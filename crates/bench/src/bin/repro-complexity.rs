//! Reproduces the **§V-H1 complexity analysis**: training the KRR in its
//! primal form (Eq. 7, an M×M solve with M = 28) versus the dual form
//! (Eq. 6, an N×N solve with N = 720), plus per-window classification time
//! and the §V-H2 CPU/memory overhead picture.
//!
//! Absolute times differ from the paper's (Nexus 5 vs desktop); the claim
//! under test is the *asymmetry* between the two forms.

use smarteryou_bench::{compare_row, header, repro_config};
use smarteryou_core::experiment::{collect_population_features, complexity_experiment};
use smarteryou_core::OverheadReport;

fn main() {
    let cfg = repro_config();
    header("§V-H", "KRR complexity and system overhead");
    let data = collect_population_features(&cfg);
    let report = complexity_experiment(&data, &cfg);

    println!(
        "N = {} training windows, M = {} features",
        report.n, report.m
    );
    compare_row(
        "training time (primal, Eq. 7)",
        "0.065 s (Nexus 5)",
        format!("{:?}", report.train_primal),
    );
    compare_row(
        "training time (dual, Eq. 6)",
        "O(N^2.373) — avoided",
        format!("{:?}", report.train_dual),
    );
    compare_row(
        "primal speed-up over dual",
        "large",
        format!("{:.0}x", report.speedup()),
    );
    compare_row(
        "SVM (SMO) training, same data",
        "\"much higher than KRR\"",
        format!("{:?}", report.train_svm),
    );
    compare_row(
        "per-window classification",
        "18 ms (Nexus 5)",
        format!("{:?}", report.test_time),
    );

    // §V-H2: CPU and memory overhead.
    let window_secs = cfg.window_secs;
    // Deployed model: 2 contexts × (28 weights + 28×2 scaler) + context
    // forest ≈ 50 trees × ~200 nodes × 2 floats.
    let model_params = 2 * (28 + 56) + 50 * 200 * 2;
    let buffer_floats = cfg.data_size * 28;
    let overhead =
        OverheadReport::from_measurements(&report, window_secs, model_params, buffer_floats);
    println!();
    compare_row(
        "CPU utilisation (continuous auth)",
        "~5% (never >6%)",
        format!("{:.1}%", 100.0 * overhead.cpu_utilization),
    );
    compare_row(
        "memory (models + buffers)",
        "~3 MB (whole app)",
        format!("{:.2} MB", overhead.memory_bytes as f64 / 1e6),
    );
}
