//! Reproduces **Table VII**: FRR, FAR and accuracy under two contexts with
//! different devices (the context × device ablation).

use smarteryou_bench::{compare_row, header, pct, repro_config};
use smarteryou_core::experiment::{collect_population_features, evaluate_authentication};
use smarteryou_core::{ContextMode, DeviceSet};
use smarteryou_ml::Algorithm;

fn main() {
    let cfg = repro_config();
    header("Table VII", "FRR/FAR/accuracy: context x device (KRR)");
    let data = collect_population_features(&cfg);

    // (mode, device, paper FRR, paper FAR, paper accuracy)
    let rows = [
        (ContextMode::Unified, DeviceSet::PhoneOnly, 15.4, 17.4, 83.6),
        (ContextMode::Unified, DeviceSet::Combined, 7.3, 9.3, 91.7),
        (
            ContextMode::PerContext,
            DeviceSet::PhoneOnly,
            5.1,
            8.3,
            93.3,
        ),
        (ContextMode::PerContext, DeviceSet::Combined, 0.9, 2.8, 98.1),
    ];
    for (mode, device, p_frr, p_far, p_acc) in rows {
        let perf = evaluate_authentication(&data, &cfg, device, mode, Algorithm::Krr);
        let label = format!("{} / {}", mode.name(), device.name());
        compare_row(
            &format!("{label} FRR"),
            format!("{p_frr:.1}%"),
            pct(perf.frr),
        );
        compare_row(
            &format!("{label} FAR"),
            format!("{p_far:.1}%"),
            pct(perf.far),
        );
        compare_row(
            &format!("{label} accuracy"),
            format!("{p_acc:.1}%"),
            pct(perf.accuracy()),
        );
        println!();
    }
}
