//! Reproduces **Table V**: the confusion matrix of user-agnostic context
//! detection with two contexts, plus the rejected four-context design that
//! motivated collapsing the stationary-like contexts (§V-E).

use smarteryou_bench::{compare_row, header, pct, repro_config};
use smarteryou_core::experiment::context_detection_experiment;

fn main() {
    let cfg = repro_config();
    header(
        "Table V",
        "context-detection confusion matrix (random forest)",
    );
    let report = context_detection_experiment(&cfg);

    println!("two-context confusion matrix (measured):");
    println!("{}", report.coarse);
    compare_row(
        "stationary -> stationary",
        "99.1%",
        pct(report.coarse.row_rate(0, 0)),
    );
    compare_row(
        "moving -> moving",
        "99.4%",
        pct(report.coarse.row_rate(1, 1)),
    );
    compare_row("overall accuracy", ">99%", pct(report.coarse.accuracy()));
    compare_row(
        "detection time",
        "< 3 ms",
        format!("{:?}", report.detect_time),
    );

    println!("\nrejected four-context design (measured):");
    println!("{}", report.raw);
    println!(
        "mean off-diagonal rate among stationary-like contexts: {} \
         (the §V-E confusion that motivated the two-context collapse)",
        pct(report.stationary_like_confusion())
    );
}
