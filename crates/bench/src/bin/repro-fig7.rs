//! Reproduces **Figure 7**: the confidence score of a drifting user over
//! ~12 days. The paper: CS sags below ε = 0.2 around the end of the first
//! week, the system retrains automatically, and the score recovers.

use smarteryou_bench::{compare_row, header, num, repro_config, sparkline};
use smarteryou_core::experiment::drift_experiment;
use smarteryou_core::SystemEvent;

fn main() {
    let mut cfg = repro_config();
    if !smarteryou_bench::quick_mode() {
        // One pipeline run, not a population sweep.
        cfg.num_users = 12;
    }
    header(
        "Figure 7",
        "confidence score of a drifting user over 12 days",
    );
    // Figure 7 illustrates a user whose habits change noticeably within a
    // week — pronounced drift relative to the population default.
    let report = drift_experiment(&cfg, 12, 6.0);

    let series: Vec<f64> = report.daily_confidence.iter().map(|(_, cs)| *cs).collect();
    println!("daily median confidence {}", sparkline(&series));
    for (day, cs) in &report.daily_confidence {
        let mark = match report.retrain_day {
            Some(d) if (d.floor() as u32) == *day => "   <-- retrained",
            _ => "",
        };
        println!("day {day:>2}   CS {}{}", num(*cs, 3), mark);
    }
    compare_row(
        "retraining triggered around",
        "day 7",
        report
            .retrain_day
            .map_or("never".into(), |d| format!("day {d:.1}")),
    );
    let retrains = report
        .events
        .iter()
        .filter(|e| matches!(e, SystemEvent::Retrained { .. }))
        .count();
    println!(
        "pipeline events: {} retrain(s), {:?}",
        retrains, report.events
    );
}
