//! Reproduces **Table I**: the related-work comparison. The prior-work rows
//! are citations (reprinted as-is); the SmarterYou row is *measured* by
//! running the deployed configuration end to end.

use smarteryou_bench::{header, pct, repro_config};
use smarteryou_core::experiment::{collect_population_features, evaluate_authentication};
use smarteryou_core::{ContextMode, DeviceSet};
use smarteryou_ml::Algorithm;

fn main() {
    let cfg = repro_config();
    header(
        "Table I",
        "comparison with prior implicit-authentication work",
    );

    println!(
        "{:<28} {:<38} {:>9} {:>7} {:>7} {:>7}",
        "work", "modality", "accuracy", "FAR", "FRR", "users"
    );
    let cited: &[(&str, &str, &str, &str, &str, &str)] = &[
        ("Trojahn'13", "touchscreen", "n.a.", "11%", "16%", "18"),
        ("Frank'13", "touchscreen", "96%", "n.a.", "n.a.", "41"),
        ("Li'13", "touchscreen", "95.7%", "n.a.", "n.a.", "75"),
        (
            "Feng'12",
            "touchscreen+acc+gyr",
            "n.a.",
            "4.66%",
            "0.13%",
            "40",
        ),
        ("Xu'14", "touchscreen", ">90%", "n.a.", "n.a.", "31"),
        (
            "Zheng'14",
            "touchscreen+acc",
            "96.35%",
            "n.a.",
            "n.a.",
            "80",
        ),
        (
            "Conti'11",
            "acc+orientation",
            "n.a.",
            "4.44%",
            "9.33%",
            "10",
        ),
        (
            "Kayacik'14",
            "acc+ori+mag+light",
            "n.a.",
            "n.a.",
            "n.a.",
            "4",
        ),
        (
            "Zhu'13 (SenSec)",
            "acc+ori+mag",
            "75%",
            "n.a.",
            "n.a.",
            "20",
        ),
        (
            "Nickel'12",
            "accelerometer (k-NN)",
            "n.a.",
            "3.97%",
            "22.22%",
            "20",
        ),
        ("Lee'15", "acc+ori+mag", "90%", "n.a.", "n.a.", "4"),
        ("Yang'15", "accelerometer", "n.a.", "15%", "10%", "200"),
        ("Buthpitiya'11", "GPS", "86.6%", "n.a.", "n.a.", "30"),
    ];
    for (work, modality, acc, far, frr, users) in cited {
        println!("{work:<28} {modality:<38} {acc:>9} {far:>7} {frr:>7} {users:>7}");
    }

    let data = collect_population_features(&cfg);
    let perf = evaluate_authentication(
        &data,
        &cfg,
        DeviceSet::Combined,
        ContextMode::PerContext,
        Algorithm::Krr,
    );
    println!(
        "{:<28} {:<38} {:>9} {:>7} {:>7} {:>7}   (paper: 98.1% / 2.8% / 0.9% / 35)",
        "SmarterYou (measured)",
        "accelerometer & gyroscope",
        pct(perf.accuracy()),
        pct(perf.far),
        pct(perf.frr),
        cfg.num_users,
    );
}
