//! Reproduces **Figure 5**: accuracy versus training-set size under the two
//! contexts. The paper's finding: accuracy peaks around 800 windows and
//! declines beyond (training sets reaching further into the past include
//! drifted behaviour).

use smarteryou_bench::{header, num, repro_config, sparkline};
use smarteryou_core::experiment::data_size_sweep;
use smarteryou_core::DeviceSet;
use smarteryou_sensors::UsageContext;

fn main() {
    let mut cfg = repro_config();
    let sizes: Vec<usize> = if smarteryou_bench::quick_mode() {
        cfg.windows_per_context = 80;
        vec![40, 80, 160]
    } else {
        cfg.windows_per_context = 620;
        vec![100, 200, 400, 600, 800, 1000, 1200]
    };
    header("Figure 5", "accuracy vs training-set size");
    let points = data_size_sweep(&cfg, &sizes);

    for (c, ctx) in UsageContext::ALL.iter().enumerate() {
        println!("\n--- {} ---", ctx.name());
        for (d, device) in DeviceSet::ALL.iter().enumerate() {
            let acc: Vec<f64> = points
                .iter()
                .map(|p| p.performance[c][d].accuracy())
                .collect();
            println!(
                "{:<12} acc {} [{}]",
                device.name(),
                sparkline(&acc),
                acc.iter()
                    .map(|v| num(100.0 * v, 1))
                    .collect::<Vec<_>>()
                    .join(", "),
            );
        }
        println!(
            "data sizes: {:?}",
            points.iter().map(|p| p.data_size).collect::<Vec<_>>()
        );
    }
    println!(
        "\npaper's shape: accuracy rises with data, peaks near 800 and\n\
         declines past it; more devices sit strictly higher."
    );
}
