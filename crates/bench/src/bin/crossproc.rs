//! Two-process ownership demo: live OS processes migrating users over one
//! shared [`FileSnapshotStore`] directory.
//!
//! The orchestrator (this process) seeds a store with enrolled pipelines,
//! computes an uncrashed baseline decision stream, then drives two real
//! node processes (`--node` mode of this same binary) over stdin/stdout:
//!
//! * **Scenario 1 — live handoff:** node A adopts a user through the epoch
//!   CAS, scores and checkpoints half the windows, and drops the user;
//!   node B adopts at the next epoch and finishes the stream. A's attempt
//!   to re-adopt with its stale knowledge is a typed rejection — no forked
//!   pipeline — and the concatenated A+B decisions are bit-identical to
//!   the baseline — no lost windows.
//! * **Scenario 2 — crash handoff:** node A is armed with an abort-mode
//!   kill point (`save.data@2`) and dies mid-checkpoint. The orchestrator
//!   reopens the directory (sweeping the dead node's lock and resolving
//!   its write-ahead journal), walks through the recovery verdict, and
//!   node B adopts and replays the remainder — again bit-identical.
//!
//! Run `--smoke` for the CI-sized version (same protocol, fewer windows).

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use smarteryou_bench::{flag_error, flag_value, header};
use smarteryou_core::fault::{FaultPlan, CRASH_POINT_ENV};
use smarteryou_core::persist::{FileSnapshotStore, JournalResolution, PersistError, SnapshotStore};
use smarteryou_core::{
    ContextDetector, ContextDetectorConfig, DeviceSet, FeatureExtractor, ProcessOutcome,
    ResponsePolicy, RetrainPolicy, SmarterYou, SystemConfig, TrainingServer,
};
use smarteryou_sensors::{
    DualDeviceWindow, Population, RawContext, TraceGenerator, UserId, WindowSpec,
};

const USAGE: &str = "crossproc [--smoke] | crossproc --node --dir <dir> --windows <n>";

/// Device owners migrated between the nodes.
const NUM_USERS: usize = 2;
/// Seeds pinning the demo's population, pool, detector, and streams — the
/// orchestrator and both nodes derive identical worlds from these.
const POPULATION_SEED: u64 = 58_013;
const POOL_GEN_SEED: u64 = 17;
const DETECTOR_RNG_SEED: u64 = 31;
const STREAM_SEED: u64 = 81_000;
const PIPELINE_SEED: u64 = 1;

/// The world both sides rebuild deterministically. The context-detector
/// forest is only needed to *construct* pipelines, so nodes (which only
/// restore) skip training it.
struct Fixture {
    cfg: SystemConfig,
    spec: WindowSpec,
    population: Population,
    server: Arc<Mutex<TrainingServer>>,
    /// Reserve users' windows per raw context, kept for detector training.
    reserve_windows: Vec<(RawContext, Vec<DualDeviceWindow>)>,
}

fn fixture() -> Fixture {
    let population = Population::generate(NUM_USERS + 4, POPULATION_SEED);
    let cfg = SystemConfig::paper_default()
        .with_window_secs(2.0)
        .with_data_size(40);
    let spec = WindowSpec::from_seconds(cfg.window_secs(), cfg.sample_rate());
    let extractor = FeatureExtractor::paper_default(cfg.sample_rate());
    let mut server = TrainingServer::new();
    let mut reserve_windows = Vec::new();
    for user in &population.users()[NUM_USERS..] {
        let mut gen = TraceGenerator::new(user.clone(), POOL_GEN_SEED);
        for raw in [RawContext::SittingStanding, RawContext::MovingAround] {
            let windows = gen.generate_windows(raw, spec, 25);
            server.contribute(
                raw.coarse(),
                windows
                    .iter()
                    .map(|w| extractor.auth_features(w, DeviceSet::Combined)),
            );
            reserve_windows.push((raw, windows));
        }
    }
    Fixture {
        cfg,
        spec,
        population,
        server: Arc::new(Mutex::new(server)),
        reserve_windows,
    }
}

impl Fixture {
    /// Enrollment prefix + `auth` windows for one device owner — identical
    /// in every process.
    fn stream(&self, user: usize, auth: usize) -> Vec<DualDeviceWindow> {
        let profile = self.population.users()[user].clone();
        let mut gen = TraceGenerator::new(profile, STREAM_SEED + user as u64);
        let mut windows = Vec::new();
        for round in 0..26 {
            let ctx = if round % 2 == 0 {
                RawContext::SittingStanding
            } else {
                RawContext::MovingAround
            };
            windows.extend(gen.generate_windows(ctx, self.spec, 2));
        }
        for round in 0..auth.div_ceil(4) {
            let ctx = if round % 2 == 0 {
                RawContext::MovingAround
            } else {
                RawContext::SittingStanding
            };
            windows.extend(gen.generate_windows(ctx, self.spec, 4));
        }
        windows
    }

    /// Trains the user-agnostic detector (orchestrator only).
    fn detector(&self) -> ContextDetector {
        let extractor = FeatureExtractor::paper_default(self.cfg.sample_rate());
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for (raw, windows) in &self.reserve_windows {
            for w in windows {
                features.push(extractor.context_features(w));
                labels.push(raw.coarse());
            }
        }
        let mut rng: StdRng = SeedableRng::seed_from_u64(DETECTOR_RNG_SEED);
        ContextDetector::train(
            extractor,
            &features,
            &labels,
            ContextDetectorConfig {
                num_trees: 16,
                max_depth: 8,
            },
            &mut rng,
        )
        .expect("detector trains")
    }
}

/// Confidence travels as raw bits so cross-process comparison is exact.
fn encode_outcome(out: &ProcessOutcome) -> String {
    match out {
        ProcessOutcome::Decision {
            decision,
            action,
            retrained,
        } => format!(
            "D:{:016x}:{}:{:?}:{:?}:{}",
            decision.confidence.to_bits(),
            decision.accepted,
            decision.context,
            action,
            retrained
        ),
        ProcessOutcome::Enrolling { stationary, moving } => format!("E:{stationary}:{moving}"),
    }
}

// ── Node mode ───────────────────────────────────────────────────────────

/// A fleet node: owns a [`FileSnapshotStore`] handle on the shared
/// directory and a map of resident pipelines, driven by line commands on
/// stdin. Every reply is a single flushed stdout line.
fn run_node(dir: PathBuf, auth_windows: usize) {
    let fx = fixture();
    let streams: Vec<Vec<DualDeviceWindow>> = (0..NUM_USERS)
        .map(|u| {
            let s = fx.stream(u, auth_windows);
            s[s.len() - auth_windows..].to_vec()
        })
        .collect();
    // The orchestrator arms crash scenarios via SMARTERYOU_CRASH_POINT.
    let mut store = match FaultPlan::from_env() {
        Some(plan) => FileSnapshotStore::with_fault_plan(&dir, plan),
        None => FileSnapshotStore::new(&dir),
    }
    .expect("node opens store");
    let mut resident: HashMap<usize, (SmarterYou, u64)> = HashMap::new();
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    let mut reply = |line: String| {
        writeln!(out, "{line}")
            .and_then(|()| out.flush())
            .expect("node stdout");
    };
    reply(format!("ready {}", std::process::id()));
    for line in stdin.lock().lines() {
        let line = line.expect("node stdin");
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("adopt") => {
                let u: usize = parts.next().unwrap().parse().unwrap();
                let expected: u64 = parts.next().unwrap().parse().unwrap();
                match store.acquire_cas(UserId(u), expected) {
                    Ok(epoch) => {
                        let snapshot = store
                            .load(UserId(u))
                            .expect("node load")
                            .expect("adopted user has a snapshot");
                        let pipeline =
                            SmarterYou::restore(snapshot, fx.server.clone()).expect("node restore");
                        resident.insert(u, (pipeline, epoch));
                        reply(format!("adopted {u} {epoch}"));
                    }
                    Err(PersistError::StaleEpoch { stored, .. }) => {
                        reply(format!("stale {u} {stored}"));
                    }
                    Err(e) => panic!("node adopt failed: {e}"),
                }
            }
            Some("feed") => {
                let u: usize = parts.next().unwrap().parse().unwrap();
                let start: usize = parts.next().unwrap().parse().unwrap();
                let count: usize = parts.next().unwrap().parse().unwrap();
                let (pipeline, held) = resident.get_mut(&u).expect("feed of a resident user");
                for (i, window) in streams[u].iter().enumerate().skip(start).take(count) {
                    let outcome = pipeline.process_window(window).expect("node window");
                    reply(format!("decision {u} {i} {}", encode_outcome(&outcome)));
                    store
                        .save_fenced(UserId(u), *held, &pipeline.snapshot())
                        .expect("node checkpoint");
                    reply(format!("saved {u} {i}"));
                }
            }
            Some("drop") => {
                let u: usize = parts.next().unwrap().parse().unwrap();
                resident.remove(&u);
                reply(format!("dropped {u}"));
            }
            Some("quit") => break,
            _ => panic!("node got unknown command {line:?}"),
        }
    }
}

// ── Orchestrator ────────────────────────────────────────────────────────

struct Node {
    name: &'static str,
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
}

impl Node {
    fn spawn(
        name: &'static str,
        dir: &std::path::Path,
        auth_windows: usize,
        crash_point: Option<&str>,
    ) -> Node {
        let exe = std::env::current_exe().expect("crossproc path");
        let mut cmd = Command::new(exe);
        cmd.args([
            "--node",
            "--dir",
            &dir.display().to_string(),
            "--windows",
            &auth_windows.to_string(),
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped());
        match crash_point {
            Some(point) => cmd.env(CRASH_POINT_ENV, point),
            None => cmd.env_remove(CRASH_POINT_ENV),
        };
        let mut child = cmd.spawn().expect("spawn node");
        let stdin = child.stdin.take().unwrap();
        let mut stdout = BufReader::new(child.stdout.take().unwrap());
        let mut ready = String::new();
        stdout.read_line(&mut ready).expect("node ready line");
        let pid = ready.trim().strip_prefix("ready ").expect("ready line");
        println!("  [{name}] node up (pid {pid})");
        Node {
            name,
            child,
            stdin,
            stdout,
        }
    }

    fn send(&mut self, command: &str) {
        writeln!(self.stdin, "{command}").expect("node command");
        self.stdin.flush().expect("node command flush");
    }

    fn read_line(&mut self) -> Option<String> {
        let mut line = String::new();
        match self.stdout.read_line(&mut line) {
            Ok(0) => None,
            Ok(_) => Some(line.trim().to_string()),
            Err(e) => panic!("node {} stdout: {e}", self.name),
        }
    }

    /// Sends `command` and returns reply lines up to (and including) the
    /// first whose head matches one of `until`.
    fn transact(&mut self, command: &str, until: &[&str]) -> Vec<String> {
        self.send(command);
        let mut lines = Vec::new();
        loop {
            let line = self
                .read_line()
                .unwrap_or_else(|| panic!("node {} died mid-transaction", self.name));
            let head = line.split_whitespace().next().unwrap_or("").to_string();
            lines.push(line);
            if until.contains(&head.as_str()) {
                return lines;
            }
        }
    }

    fn shutdown(mut self) {
        self.send("quit");
        let _ = self.child.wait();
    }
}

/// Collects `decision <u> <i> <enc>` lines into `per_window[i] = enc`.
fn harvest_decisions(lines: &[String], user: usize, into: &mut Vec<(usize, String)>) {
    for line in lines {
        let mut parts = line.split_whitespace();
        if parts.next() == Some("decision") {
            let u: usize = parts.next().unwrap().parse().unwrap();
            if u == user {
                let i: usize = parts.next().unwrap().parse().unwrap();
                into.push((i, parts.next().unwrap().to_string()));
            }
        }
    }
}

fn orchestrate(smoke: bool) {
    let auth_windows = if smoke { 8 } else { 12 };
    let handoff_at = auth_windows / 2;
    header(
        "crossproc",
        "two OS processes migrating users over one FileSnapshotStore",
    );
    println!("auth windows per user: {auth_windows}, handoff after {handoff_at}");

    let fx = fixture();
    let detector = fx.detector();

    // Enroll each owner's pipeline in-process and compute the uncrashed
    // baseline stream the nodes must reproduce bit for bit.
    let mut enrolled: Vec<SmarterYou> = Vec::new();
    let mut baselines: Vec<Vec<String>> = Vec::new();
    for u in 0..NUM_USERS {
        let stream = fx.stream(u, auth_windows);
        let auth_start = stream.len() - auth_windows;
        let mut pipeline = SmarterYou::new(
            fx.cfg.clone(),
            detector.clone(),
            fx.server.clone(),
            PIPELINE_SEED + u as u64,
        )
        .expect("valid config")
        .with_response_policy(ResponsePolicy {
            rejects_to_lock: usize::MAX,
        })
        .with_retrain_policy(RetrainPolicy {
            threshold: 1e9,
            period: 5,
            max_reject_fraction: 1.0,
        });
        for window in &stream[..auth_start] {
            pipeline.process_window(window).expect("enrollment");
        }
        assert!(pipeline.snapshot().is_enrolled(), "user {u} enrolls");
        let mut reference = pipeline.clone();
        baselines.push(
            stream[auth_start..]
                .iter()
                .map(|w| encode_outcome(&reference.process_window(w).expect("baseline")))
                .collect(),
        );
        enrolled.push(pipeline);
    }

    // ── Scenario 1: live handoff ────────────────────────────────────────
    println!();
    println!("scenario 1: live handoff A -> B (epoch CAS, no fork, no lost windows)");
    let dir = std::env::temp_dir().join(format!("smarteryou-crossproc-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    {
        let mut store = FileSnapshotStore::new(&dir).expect("seed store");
        for (u, pipeline) in enrolled.iter().enumerate() {
            store
                .save(UserId(u), &pipeline.snapshot())
                .expect("seed save");
        }
    }
    let mut node_a = Node::spawn("A", &dir, auth_windows, None);
    let mut node_b = Node::spawn("B", &dir, auth_windows, None);
    for (u, baseline) in baselines.iter().enumerate() {
        let mut decisions: Vec<(usize, String)> = Vec::new();
        let adopt = node_a.transact(&format!("adopt {u} 0"), &["adopted", "stale"]);
        assert_eq!(adopt.last().unwrap(), &format!("adopted {u} 1"));
        let fed = node_a.transact(&format!("feed {u} 0 {handoff_at}"), &["saved"]);
        // `feed` emits saved per window; read the remaining acks.
        let mut lines = fed;
        while lines
            .iter()
            .filter(|l| l.starts_with(&format!("saved {u}")))
            .count()
            < handoff_at
        {
            lines.push(node_a.read_line().expect("node A ack"));
        }
        harvest_decisions(&lines, u, &mut decisions);
        node_a.transact(&format!("drop {u}"), &["dropped"]);

        // B adopts at the epoch it observes (A holds 1); CAS succeeds and
        // fences A out.
        let adopt_b = node_b.transact(&format!("adopt {u} 1"), &["adopted", "stale"]);
        assert_eq!(adopt_b.last().unwrap(), &format!("adopted {u} 2"));
        // A's stale knowledge (it last saw epoch 1) can no longer win the
        // user back: a typed rejection, not a forked pipeline.
        let stale = node_a.transact(&format!("adopt {u} 1"), &["adopted", "stale"]);
        assert_eq!(stale.last().unwrap(), &format!("stale {u} 2"));
        println!(
            "  [A] re-adopt of user {u} rejected: {}",
            stale.last().unwrap()
        );

        let rest = auth_windows - handoff_at;
        let mut lines = node_b.transact(&format!("feed {u} {handoff_at} {rest}"), &["saved"]);
        while lines
            .iter()
            .filter(|l| l.starts_with(&format!("saved {u}")))
            .count()
            < rest
        {
            lines.push(node_b.read_line().expect("node B ack"));
        }
        harvest_decisions(&lines, u, &mut decisions);
        node_b.transact(&format!("drop {u}"), &["dropped"]);

        decisions.sort_by_key(|(i, _)| *i);
        assert_eq!(
            decisions.len(),
            auth_windows,
            "user {u}: no window lost across the handoff"
        );
        for (i, enc) in &decisions {
            assert_eq!(
                enc, &baseline[*i],
                "user {u} window {i}: cross-process decision diverges from baseline"
            );
        }
        println!("  user {u}: {auth_windows} decisions bit-identical across A -> B handoff");
    }
    node_a.shutdown();
    node_b.shutdown();
    std::fs::remove_dir_all(&dir).ok();
    println!("scenario 1 passed");

    // ── Scenario 2: crash handoff ───────────────────────────────────────
    println!();
    println!("scenario 2: node A killed mid-checkpoint (save.data@2), B recovers");
    let dir =
        std::env::temp_dir().join(format!("smarteryou-crossproc-crash-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let crash_user = 0usize;
    {
        let mut store = FileSnapshotStore::new(&dir).expect("seed store");
        store
            .save(UserId(crash_user), &enrolled[crash_user].snapshot())
            .expect("seed save");
    }
    let mut node_a = Node::spawn("A", &dir, auth_windows, Some("save.data@2"));
    let adopt = node_a.transact(&format!("adopt {crash_user} 0"), &["adopted", "stale"]);
    assert_eq!(adopt.last().unwrap(), &format!("adopted {crash_user} 1"));
    // Feed everything; the armed fault kills A at the second checkpoint's
    // data-written-commit-pending point. Drain its stdout until EOF.
    node_a.send(&format!("feed {crash_user} 0 {auth_windows}"));
    let mut a_lines = Vec::new();
    while let Some(line) = node_a.read_line() {
        a_lines.push(line);
    }
    let status = node_a.child.wait().expect("node A status");
    assert!(!status.success(), "node A must die at its kill point");
    let mut a_decisions: Vec<(usize, String)> = Vec::new();
    harvest_decisions(&a_lines, crash_user, &mut a_decisions);
    let acked_saves = a_lines
        .iter()
        .filter(|l| l.starts_with(&format!("saved {crash_user}")))
        .count();
    println!(
        "  [A] died after acking {acked_saves} checkpoint(s), {} decision(s)",
        a_decisions.len()
    );

    // Recovery walk-through: reopening the directory steals the dead
    // node's lock and resolves its journal.
    let mut survivor_store = FileSnapshotStore::new(&dir).expect("survivor store");
    let report = survivor_store.recovery_report().clone();
    println!(
        "  [recovery] swept_temps={} stale_locks={} journals={:?}",
        report.swept_temps, report.stale_locks, report.journals
    );
    assert_eq!(report.stale_locks, 1, "dead node's lock is reaped");
    assert!(
        matches!(
            report.journals.as_slice(),
            [(_, JournalResolution::SaveCommitted { .. })]
        ),
        "save.data crash resolves as a committed save (data landed)"
    );
    // The journal proves the in-flight checkpoint landed even though its
    // ack never arrived: resume after the last decision, not the last ack.
    let resume_from = a_decisions.iter().map(|(i, _)| i + 1).max().unwrap_or(0);
    assert_eq!(resume_from, acked_saves + 1);
    for (i, enc) in &a_decisions {
        assert_eq!(
            enc, &baselines[crash_user][*i],
            "window {i} before the crash"
        );
    }
    // A zombie holding the dead node's epoch cannot write.
    assert!(
        matches!(
            survivor_store.save_fenced(UserId(crash_user), 0, &enrolled[crash_user].snapshot()),
            Err(PersistError::StaleEpoch { .. })
        ),
        "pre-crash epoch is fenced out"
    );
    drop(survivor_store);

    let mut node_b = Node::spawn("B", &dir, auth_windows, None);
    let adopt_b = node_b.transact(&format!("adopt {crash_user} 1"), &["adopted", "stale"]);
    assert_eq!(adopt_b.last().unwrap(), &format!("adopted {crash_user} 2"));
    let rest = auth_windows - resume_from;
    let mut lines = node_b.transact(
        &format!("feed {crash_user} {resume_from} {rest}"),
        &["saved"],
    );
    while lines
        .iter()
        .filter(|l| l.starts_with(&format!("saved {crash_user}")))
        .count()
        < rest
    {
        lines.push(node_b.read_line().expect("node B ack"));
    }
    let mut b_decisions: Vec<(usize, String)> = Vec::new();
    harvest_decisions(&lines, crash_user, &mut b_decisions);
    assert_eq!(b_decisions.len(), rest);
    for (i, enc) in &b_decisions {
        assert_eq!(
            enc, &baselines[crash_user][*i],
            "window {i}: survivor decision diverges from baseline"
        );
    }
    node_b.shutdown();
    std::fs::remove_dir_all(&dir).ok();
    println!(
        "  user {crash_user}: windows 0..{resume_from} from the dead node + {resume_from}..{auth_windows} \
         from the survivor, all bit-identical to the uncrashed run"
    );
    println!("scenario 2 passed");
    println!();
    println!("crossproc: OK");
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut node = false;
    let mut smoke = false;
    let mut dir: Option<PathBuf> = None;
    let mut windows: Option<usize> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--node" => node = true,
            "--smoke" => smoke = true,
            "--dir" => dir = Some(flag_value("--dir", args.next(), USAGE)),
            "--windows" => windows = Some(flag_value("--windows", args.next(), USAGE)),
            other => flag_error(other, "unknown flag", USAGE),
        }
    }
    if node {
        let dir = dir.unwrap_or_else(|| flag_error("--node", "requires --dir", USAGE));
        let windows = windows.unwrap_or_else(|| flag_error("--node", "requires --windows", USAGE));
        run_node(dir, windows);
    } else {
        orchestrate(smoke);
    }
}
