//! Diagnostic probe (development tool): for a handful of target users,
//! compares training-set vs held-out error of linear KRR against RBF KRR,
//! to distinguish "not linearly separable" from "generalisation gap".

use rand::rngs::StdRng;
use rand::SeedableRng;
use smarteryou_bench::{flag_error, flag_value, pct};
use smarteryou_core::experiment::{collect_population_features, ExperimentConfig};
use smarteryou_core::DeviceSet;
use smarteryou_ml::{evaluate_binary, stratified_k_fold, Dataset, Kernel, KernelRidge, Scaler};
use smarteryou_sensors::UsageContext;
#[allow(unused_imports)]
use smarteryou_stats as _stats_link;

const USAGE: &str = "probe [--noise F] [--rho F]";

fn main() {
    let mut cfg = ExperimentConfig::paper_default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--noise" => cfg.generator.noise_scale = flag_value(&a, args.next(), USAGE),
            "--rho" => cfg.rho = flag_value(&a, args.next(), USAGE),
            other => flag_error(other, "unknown flag", USAGE),
        }
    }
    let data = collect_population_features(&cfg);
    let per_class = cfg.data_size / 2;

    // Per-feature Fisher scores over users, per context.
    let names = data.extractor.feature_names(DeviceSet::Combined);
    for ctx in [UsageContext::Stationary, UsageContext::Moving] {
        println!("--- Fisher scores, {} ---", ctx.name());
        let per_user: Vec<Vec<Vec<f64>>> = data
            .users
            .iter()
            .map(|u| u.features(Some(ctx), DeviceSet::Combined))
            .collect();
        for col in 0..28 {
            let groups: Vec<Vec<f64>> = per_user
                .iter()
                .map(|rows| rows.iter().map(|r| r[col]).collect())
                .collect();
            let fs = smarteryou_stats::fisher_score(&groups);
            println!("{:<22} FS {:.2}", names[col], fs);
        }
    }

    // Sitting-only clean probe: what does a single-raw-context dataset give?
    {
        use smarteryou_sensors::{Population, RawContext, TraceGenerator};
        let population = Population::generate(cfg.num_users, cfg.seed);
        let spec = cfg.window_spec();
        let per_user: Vec<Vec<Vec<f64>>> = population
            .users()
            .iter()
            .map(|u| {
                let mut gen =
                    TraceGenerator::with_config(u.clone(), cfg.seed ^ 0xAB, cfg.generator);
                let mut rows = Vec::new();
                for _ in 0..50 {
                    gen.advance_days(0.25);
                    gen.begin_session(RawContext::SittingStanding);
                    for _ in 0..8 {
                        let w = gen.next_window(spec);
                        rows.push(data.extractor.auth_features(&w, DeviceSet::Combined));
                    }
                }
                rows
            })
            .collect();
        println!("--- sitting-only Fisher ---");
        for col in [1usize, 4, 5, 9, 12, 21] {
            let groups: Vec<Vec<f64>> = per_user
                .iter()
                .map(|rows| rows.iter().map(|r| r[col]).collect())
                .collect();
            println!(
                "{:<22} FS {:.2}",
                names[col],
                smarteryou_stats::fisher_score(&groups)
            );
        }
        for target in [0usize, 9, 30] {
            let pos: Vec<Vec<f64>> = per_user[target].iter().take(per_class).cloned().collect();
            let mut negatives = Vec::new();
            let mut idx = 0;
            'outer2: loop {
                let mut any = false;
                for (i, u) in per_user.iter().enumerate() {
                    if i == target {
                        continue;
                    }
                    if let Some(v) = u.get(idx) {
                        negatives.push(v.clone());
                        any = true;
                        if negatives.len() == per_class {
                            break 'outer2;
                        }
                    }
                }
                if !any {
                    break;
                }
                idx += 1;
            }
            let dataset = Dataset::from_classes(&pos, &negatives).unwrap();
            let scaler = Scaler::fit(dataset.x());
            let xs = scaler.transform(dataset.x());
            let lin = KernelRidge::new(cfg.rho).fit(&xs, dataset.y()).unwrap();
            let out = evaluate_binary(&lin, &xs, dataset.y(), cfg.accept_threshold);
            println!(
                "sitting-only user{target:02} train(lin): FRR {} FAR {}",
                pct(out.frr()),
                pct(out.far())
            );
        }
    }

    for target in [0usize, 7, 9, 17, 30] {
        let positives =
            data.users[target].features(Some(UsageContext::Stationary), DeviceSet::Combined);
        let mut negatives = Vec::new();
        let mut idx = 0;
        'outer: loop {
            let mut any = false;
            for (i, u) in data.users.iter().enumerate() {
                if i == target {
                    continue;
                }
                let f = u.features(Some(UsageContext::Stationary), DeviceSet::Combined);
                if let Some(v) = f.get(idx) {
                    negatives.push(v.clone());
                    any = true;
                    if negatives.len() == per_class {
                        break 'outer;
                    }
                }
            }
            if !any {
                break;
            }
            idx += 1;
        }
        let pos: Vec<Vec<f64>> = positives.into_iter().take(per_class).collect();
        let dataset = Dataset::from_classes(&pos, &negatives).unwrap();
        let scaler = Scaler::fit(dataset.x());
        let xs = scaler.transform(dataset.x());
        let scaled = Dataset::new(xs, dataset.y().to_vec()).unwrap();

        // Train-set error of linear KRR (is it separable at all?).
        let lin = KernelRidge::new(cfg.rho)
            .fit(scaled.x(), scaled.y())
            .unwrap();
        let train_out = evaluate_binary(&lin, scaled.x(), scaled.y(), cfg.accept_threshold);
        // CV error, linear.
        let mut rng = StdRng::seed_from_u64(1);
        let folds = stratified_k_fold(scaled.y(), 10, &mut rng);
        let cv = |kernel: Kernel, rho: f64| {
            let mut pooled = smarteryou_stats::BinaryOutcomes::default();
            for (i, test_idx) in folds.iter().enumerate() {
                let train_idx: Vec<usize> = folds
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .flat_map(|(_, f)| f.iter().copied())
                    .collect();
                let tr = scaled.subset(&train_idx);
                let te = scaled.subset(test_idx);
                let m = KernelRidge::new(rho)
                    .with_kernel(kernel)
                    .fit(tr.x(), tr.y())
                    .unwrap();
                pooled.merge(&evaluate_binary(&m, te.x(), te.y(), cfg.accept_threshold));
            }
            pooled
        };
        let lin_cv = cv(Kernel::Linear, cfg.rho);
        let rbf_cv = cv(Kernel::Rbf { gamma: 1.0 / 28.0 }, 0.5);
        println!(
            "user{target:02}  train(lin): FRR {} FAR {}   cv(lin): FRR {} FAR {}   cv(rbf): FRR {} FAR {}",
            pct(train_out.frr()),
            pct(train_out.far()),
            pct(lin_cv.frr()),
            pct(lin_cv.far()),
            pct(rbf_cv.frr()),
            pct(rbf_cv.far()),
        );
    }
}
