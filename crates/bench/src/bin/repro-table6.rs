//! Reproduces **Table VI**: authentication performance with different
//! machine-learning algorithms at the deployed configuration
//! (combined devices, per-context models).

use smarteryou_bench::{compare_row, header, pct, repro_config};
use smarteryou_core::experiment::{collect_population_features, evaluate_authentication};
use smarteryou_core::{ContextMode, DeviceSet};
use smarteryou_ml::Algorithm;

fn main() {
    let cfg = repro_config();
    header("Table VI", "authentication performance by algorithm");
    let data = collect_population_features(&cfg);

    // (algorithm, paper FRR, paper FAR, paper accuracy)
    let rows = [
        (Algorithm::Krr, 0.9, 2.8, 98.1),
        (Algorithm::Svm, 2.7, 2.5, 97.4),
        (Algorithm::LinearRegression, 12.7, 14.6, 86.3),
        (Algorithm::NaiveBayes, 10.8, 13.9, 87.6),
    ];
    for (alg, p_frr, p_far, p_acc) in rows {
        let t0 = std::time::Instant::now();
        let perf = evaluate_authentication(
            &data,
            &cfg,
            DeviceSet::Combined,
            ContextMode::PerContext,
            alg,
        );
        let dt = t0.elapsed();
        compare_row(
            &format!("{} FRR", alg.name()),
            format!("{p_frr:.1}%"),
            pct(perf.frr),
        );
        compare_row(
            &format!("{} FAR", alg.name()),
            format!("{p_far:.1}%"),
            pct(perf.far),
        );
        compare_row(
            &format!("{} accuracy", alg.name()),
            format!("{p_acc:.1}%"),
            pct(perf.accuracy()),
        );
        println!("    (evaluated in {dt:?})\n");
    }
}
