//! Reproduces **Table III**: Pearson correlations between each pair of
//! features (upper triangle: smartphone; lower triangle: smartwatch).
//! The paper's conclusion: `Ran` is redundant (ρ ≈ 0.9 with `Var`) and is
//! dropped.

use smarteryou_bench::{
    candidate_feature_matrices, collect_raw_windows_spaced, header, repro_config,
};
use smarteryou_core::selection::mean_feature_correlation;
use smarteryou_core::FeatureKind;
use smarteryou_sensors::{DeviceKind, RawContext};

fn main() {
    let cfg = repro_config();
    header(
        "Table III",
        "within-device feature correlations (upper: phone, lower: watch)",
    );
    let (sessions, per_session) = if smarteryou_bench::quick_mode() {
        (6, 4)
    } else {
        (12, 6)
    };
    let mut windows = collect_raw_windows_spaced(
        &cfg,
        RawContext::SittingStanding,
        sessions,
        per_session,
        0.01,
    );
    for (user, extra) in windows.iter_mut().zip(collect_raw_windows_spaced(
        &cfg,
        RawContext::MovingAround,
        sessions,
        per_session,
        0.01,
    )) {
        user.extend(extra);
    }

    // Table III uses the 8 features that survive the KS screening (Peak2 f
    // already dropped), per sensor: 16 columns. Our candidate matrices have
    // 18; select the 16.
    let keep: Vec<usize> = (0..18)
        .filter(|&c| FeatureKind::ALL[c % 9] != FeatureKind::Peak2Freq)
        .collect();
    let labels: Vec<String> = keep
        .iter()
        .map(|&c| {
            let sensor = if c < 9 { "acc" } else { "gyr" };
            format!("{sensor}{}", FeatureKind::ALL[c % 9].name())
        })
        .collect();

    let select = |m: &smarteryou_linalg::Matrix| {
        let rows: Vec<Vec<f64>> = m
            .iter_rows()
            .map(|r| keep.iter().map(|&c| r[c]).collect())
            .collect();
        smarteryou_linalg::Matrix::from_rows(&rows).expect("uniform")
    };

    let phone: Vec<_> =
        candidate_feature_matrices(&windows, DeviceKind::Smartphone, cfg.sample_rate)
            .iter()
            .map(select)
            .collect();
    let watch: Vec<_> =
        candidate_feature_matrices(&windows, DeviceKind::Smartwatch, cfg.sample_rate)
            .iter()
            .map(select)
            .collect();
    let corr_phone = mean_feature_correlation(&phone, &phone);
    let corr_watch = mean_feature_correlation(&watch, &watch);

    // Print the combined triangle table like the paper.
    print!("{:>10}", "");
    for l in &labels {
        print!("{l:>9}");
    }
    println!();
    for i in 0..labels.len() {
        print!("{:>10}", labels[i]);
        for j in 0..labels.len() {
            if j > i {
                print!("{:>9.2}", corr_phone[(i, j)]);
            } else if j < i {
                print!("{:>9.2}", corr_watch[(i, j)]);
            } else {
                print!("{:>9}", "-");
            }
        }
        println!();
    }

    let var = labels.iter().position(|l| l == "accVar").expect("accVar");
    let ran = labels.iter().position(|l| l == "accRan").expect("accRan");
    let max = labels.iter().position(|l| l == "accMax").expect("accMax");
    println!(
        "\npaper: corr(Var, Ran) ≈ 0.90 (phone acc)        measured: {:.2}",
        corr_phone[(var, ran)]
    );
    println!(
        "paper: corr(Max, Ran) high (phone acc)          measured: {:.2}",
        corr_phone[(max, ran)]
    );
    println!("conclusion: Ran is redundant with Var and is dropped (§V-C).");
}
