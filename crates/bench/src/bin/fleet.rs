//! Fleet-engine throughput benchmark at the paper's deployed window
//! (6 s × 50 Hz = 300 samples): windows/sec scored by the batched
//! multi-user engine at 100, 1 000 and 10 000 simulated users, plus a
//! 300-sample spectrum microbench isolating the planned-FFT gain.
//!
//! ```text
//! cargo run --release -p smarteryou-bench --bin fleet [-- --quick]
//! ```
//!
//! `--quick` drops the 10 000-user row for CI/smoke runs. Results are
//! printed *and* written to `BENCH_fleet.json` so the perf trajectory is
//! machine-readable across PRs.
//!
//! The run fails (exit 1) if any spectral computation during the fleet
//! ticks fell back to the O(n²) reference DFT — the planned Bluestein path
//! must serve the non-power-of-two production window.

use std::time::Instant;

use serde::Serialize;
use smarteryou_bench::fleet::FleetFixture;
use smarteryou_dsp::{dft_fallback_count, SpectrumPlan, SpectrumScratch};

/// The paper's deployed window: 6 s at 50 Hz = 300 samples.
const WINDOW_SECS: f64 = 6.0;
const SAMPLE_RATE_HZ: f64 = 50.0;
const WINDOW_SAMPLES: usize = (WINDOW_SECS * SAMPLE_RATE_HZ) as usize;

#[derive(Debug, Serialize)]
struct ThroughputRow {
    windows_per_user_per_tick: usize,
    ticks: usize,
    windows: usize,
    secs: f64,
    windows_per_sec: f64,
}

#[derive(Debug, Serialize)]
struct FleetSize {
    users: usize,
    build_secs: f64,
    rows: Vec<ThroughputRow>,
}

#[derive(Debug, Serialize)]
struct ChurnRow {
    /// How the per-tick working set moves: 0 keeps the same `capacity`
    /// users hot (steady state, no churn after warm-up); `capacity` shifts
    /// the whole working set every tick (worst case: every submit
    /// rehydrates, every tick evicts).
    working_set_stride: usize,
    ticks: usize,
    windows: usize,
    evictions: u64,
    rehydrations: u64,
    secs: f64,
    windows_per_sec: f64,
}

#[derive(Debug, Serialize)]
struct EvictionChurnBench {
    users: usize,
    /// Resident-pipeline cap enforced after every tick.
    capacity: usize,
    rows: Vec<ChurnRow>,
}

#[derive(Debug, Serialize)]
struct SpectrumMicrobench {
    samples: usize,
    planned_spectra_per_sec: f64,
    dft_reference_spectra_per_sec: f64,
    planned_speedup: f64,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    bench: String,
    quick: bool,
    window_secs: f64,
    sample_rate_hz: f64,
    window_samples: usize,
    /// O(n²) DFT invocations observed while the fleet sizes ran — must be
    /// zero: the production window is served by the planned Bluestein path.
    dft_fallbacks_during_fleet: u64,
    fleet: Vec<FleetSize>,
    /// Throughput with bounded residency: idle pipelines snapshotted to an
    /// in-memory store (full JSON encode/decode per round-trip) and
    /// rehydrated on submit. Decisions stay bit-identical to the unevicted
    /// engine (`tests/persist_parity.rs`); this measures what the churn
    /// costs.
    eviction_churn: EvictionChurnBench,
    spectrum_microbench: SpectrumMicrobench,
}

fn measure(num_users: usize) -> FleetSize {
    let build_start = Instant::now();
    let mut fixture =
        FleetFixture::build_with_window(num_users, WINDOW_SECS, 0xF1EE7).expect("fixture builds");
    let build_secs = build_start.elapsed().as_secs_f64();

    // Warm-up tick so first-touch allocation noise stays out of the numbers.
    fixture.submit_tick(1);
    fixture.tick();

    let mut rows = Vec::new();
    for per_user in [1usize, 4] {
        let ticks = 5;
        let mut windows = 0usize;
        let mut accepts = 0usize;
        let mut rejections = 0usize;
        let start = Instant::now();
        for _ in 0..ticks {
            windows += fixture.submit_tick(per_user);
            let report = fixture.tick();
            accepts += report.accepts();
            rejections += report.rejections();
        }
        let secs = start.elapsed().as_secs_f64();
        let throughput = windows as f64 / secs;
        println!(
            "{num_users:>7} users  {per_user} win/user/tick  {windows:>7} windows in {secs:>7.3}s  \
             {throughput:>12.0} windows/sec  (accept {accepts}, reject {rejections})"
        );
        rows.push(ThroughputRow {
            windows_per_user_per_tick: per_user,
            ticks,
            windows,
            secs,
            windows_per_sec: throughput,
        });
    }
    println!("{num_users:>7} users  fixture build (enrollment + model training): {build_secs:.2}s");
    FleetSize {
        users: num_users,
        build_secs,
        rows,
    }
}

/// Measures tick throughput with eviction enabled: a fleet of `num_users`
/// enrolled pipelines capped at `capacity` resident, driven by a working
/// set of `capacity` active users per tick. Stride 0 is the friendly case
/// (the hot set stays hot); stride = `capacity` rotates the whole working
/// set each tick, so every submit rehydrates from a snapshot and every
/// tick evicts a full working set — the upper bound on churn cost.
fn measure_churn(num_users: usize, capacity: usize) -> EvictionChurnBench {
    let mut fixture =
        FleetFixture::build_with_window(num_users, WINDOW_SECS, 0xCAFE).expect("fixture builds");
    fixture.enable_eviction(capacity);
    // Warm-up: establish the initial resident set and evict the rest.
    fixture.submit_tick_for(0..capacity, 1);
    fixture.tick();

    let mut rows = Vec::new();
    for stride in [0usize, capacity] {
        let ticks = 5;
        let mut windows = 0usize;
        let (evictions_before, rehydrations_before) = fixture.engine_mut().eviction_totals();
        let start = Instant::now();
        for t in 0..ticks {
            // (t + 1): the warm-up left users 0..capacity resident, so the
            // first strided tick must already rotate away from them —
            // otherwise one of the measured ticks is churn-free and the
            // "worst case" number is diluted.
            let first = ((t + 1) * stride) % num_users;
            windows += fixture.submit_tick_for((first..first + capacity).map(|u| u % num_users), 1);
            fixture.tick();
        }
        let secs = start.elapsed().as_secs_f64();
        let (evictions_after, rehydrations_after) = fixture.engine_mut().eviction_totals();
        let evictions = evictions_after - evictions_before;
        let rehydrations = rehydrations_after - rehydrations_before;
        let throughput = windows as f64 / secs;
        println!(
            "{num_users:>7} users  cap {capacity}  stride {stride:>4}  {windows:>6} windows in \
             {secs:>7.3}s  {throughput:>10.0} windows/sec  \
             (evictions {evictions}, rehydrations {rehydrations})"
        );
        rows.push(ChurnRow {
            working_set_stride: stride,
            ticks,
            windows,
            evictions,
            rehydrations,
            secs,
            windows_per_sec: throughput,
        });
    }
    EvictionChurnBench {
        users: num_users,
        capacity,
        rows,
    }
}

/// Times the planned spectrum against the O(n²) reference at the deployed
/// 300-sample window. The reference intentionally calls [`smarteryou_dsp::dft`],
/// so this must run *after* the fallback counter has been checked.
fn spectrum_microbench() -> SpectrumMicrobench {
    let signal: Vec<f64> = (0..WINDOW_SAMPLES)
        .map(|i| 9.81 + (i as f64 * 0.23).sin() + 0.4 * (i as f64 * 0.71).cos())
        .collect();

    let plan = SpectrumPlan::new(WINDOW_SAMPLES);
    let mut scratch = SpectrumScratch::default();
    let mut out = Vec::new();
    plan.magnitude_into(&signal, &mut scratch, &mut out); // warm buffers
    let planned_iters = 20_000usize;
    let start = Instant::now();
    for _ in 0..planned_iters {
        plan.magnitude_into(&signal, &mut scratch, &mut out);
        std::hint::black_box(&out);
    }
    let planned_per_sec = planned_iters as f64 / start.elapsed().as_secs_f64();

    // O(n²) reference: mean removal + direct DFT + one-sided scaling, the
    // shape of the pre-plan fallback path.
    let dft_iters = 200usize;
    let start = Instant::now();
    for _ in 0..dft_iters {
        let n = signal.len();
        let mean = signal.iter().sum::<f64>() / n as f64;
        let buf: Vec<smarteryou_dsp::Complex> = signal
            .iter()
            .map(|&s| smarteryou_dsp::Complex::from_real(s - mean))
            .collect();
        let transformed = smarteryou_dsp::dft(&buf);
        let spectrum: Vec<f64> = transformed[..=n / 2]
            .iter()
            .map(|z| z.abs() * 2.0 / n as f64)
            .collect();
        std::hint::black_box(spectrum);
    }
    let dft_per_sec = dft_iters as f64 / start.elapsed().as_secs_f64();

    println!(
        "spectrum @ {WINDOW_SAMPLES} samples: planned {planned_per_sec:.0}/sec, \
         O(n²) reference {dft_per_sec:.0}/sec ({:.1}× faster)",
        planned_per_sec / dft_per_sec
    );
    SpectrumMicrobench {
        samples: WINDOW_SAMPLES,
        planned_spectra_per_sec: planned_per_sec,
        dft_reference_spectra_per_sec: dft_per_sec,
        planned_speedup: planned_per_sec / dft_per_sec,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    smarteryou_bench::header(
        "fleet",
        "batched multi-user scoring throughput (FleetEngine::tick, 300-sample windows)",
    );
    let sizes: &[usize] = if quick {
        &[100, 1_000]
    } else {
        &[100, 1_000, 10_000]
    };
    let baseline = dft_fallback_count();
    let mut fleet = Vec::new();
    for &n in sizes {
        fleet.push(measure(n));
        println!();
    }
    // Eviction churn at the mid-size fleet: enough users that bounded
    // residency matters, small enough that the scenario stays a smoke test
    // in --quick runs.
    let (churn_users, churn_capacity) = if quick { (200, 50) } else { (1_000, 250) };
    let eviction_churn = measure_churn(churn_users, churn_capacity);
    println!();
    let fallbacks = dft_fallback_count() - baseline;

    // The microbench runs the reference DFT on purpose; check the fleet
    // fallback count first so the guard only sees production work.
    let microbench = spectrum_microbench();

    let report = BenchReport {
        bench: "fleet".to_string(),
        quick,
        window_secs: WINDOW_SECS,
        sample_rate_hz: SAMPLE_RATE_HZ,
        window_samples: WINDOW_SAMPLES,
        dft_fallbacks_during_fleet: fallbacks,
        fleet,
        eviction_churn,
        spectrum_microbench: microbench,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    // Echo the report before any failure exit so CI logs always carry the
    // machine-readable numbers, fallback regressions included.
    println!("{json}");
    std::fs::write("BENCH_fleet.json", json + "\n").expect("BENCH_fleet.json written");
    println!("wrote BENCH_fleet.json");

    if fallbacks > 0 {
        eprintln!(
            "FAIL: {fallbacks} spectral computation(s) fell back to the O(n²) DFT \
             during fleet scoring — the planned FFT must cover the production window"
        );
        std::process::exit(1);
    }
}
