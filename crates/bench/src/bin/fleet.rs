//! Fleet-engine throughput baseline: windows/sec scored by the batched
//! multi-user engine at 100, 1 000 and 10 000 simulated users.
//!
//! ```text
//! cargo run --release -p smarteryou-bench --bin fleet [-- --quick]
//! ```
//!
//! `--quick` drops the 10 000-user row for CI/smoke runs. Future PRs that
//! touch the scoring hot path should compare against the numbers this
//! prints (see ROADMAP "Open items").

use std::time::Instant;

use smarteryou_bench::fleet::FleetFixture;

fn measure(num_users: usize) {
    let build_start = Instant::now();
    let mut fixture = FleetFixture::build(num_users, 0xF1EE7).expect("fixture builds");
    let build_secs = build_start.elapsed().as_secs_f64();

    // Warm-up tick so first-touch allocation noise stays out of the numbers.
    fixture.submit_tick(1);
    fixture.tick();

    for per_user in [1usize, 4] {
        let ticks = 5;
        let mut windows = 0usize;
        let mut accepts = 0usize;
        let mut rejections = 0usize;
        let start = Instant::now();
        for _ in 0..ticks {
            windows += fixture.submit_tick(per_user);
            let report = fixture.tick();
            accepts += report.accepts();
            rejections += report.rejections();
        }
        let secs = start.elapsed().as_secs_f64();
        let throughput = windows as f64 / secs;
        println!(
            "{num_users:>7} users  {per_user} win/user/tick  {windows:>7} windows in {secs:>7.3}s  \
             {throughput:>12.0} windows/sec  (accept {accepts}, reject {rejections})"
        );
    }
    println!("{num_users:>7} users  fixture build (enrollment + model training): {build_secs:.2}s");
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    smarteryou_bench::header(
        "fleet",
        "batched multi-user scoring throughput (FleetEngine::tick)",
    );
    let sizes: &[usize] = if quick {
        &[100, 1_000]
    } else {
        &[100, 1_000, 10_000]
    };
    for &n in sizes {
        measure(n);
        println!();
    }
}
