//! Fleet-engine throughput benchmark at the paper's deployed window
//! (6 s × 50 Hz = 300 samples): windows/sec scored by the batched
//! multi-user engine at 100, 1 000 and 10 000 simulated users, plus a
//! 300-sample spectrum microbench isolating the planned-FFT gain.
//!
//! ```text
//! cargo run --release -p smarteryou-bench --bin fleet [-- --quick]
//! ```
//!
//! `--quick` drops the 10 000-user row for CI/smoke runs. Results are
//! printed *and* written to `BENCH_fleet.json` so the perf trajectory is
//! machine-readable across PRs.
//!
//! The run fails (exit 1) if any spectral computation during the fleet
//! ticks fell back to the O(n²) reference DFT — the planned Bluestein path
//! must serve the non-power-of-two production window.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use smarteryou_bench::fleet::{retrain_material, FleetFixture, ShardFixture};
use smarteryou_core::engine::{BackpressurePolicy, TrainingService};
use smarteryou_core::{NegativeEpoch, RetrainPolicy, RetrainWorkspaceCache};
use smarteryou_dsp::{dft_fallback_count, SpectrumPlan, SpectrumScratch};
use smarteryou_ml::{KrrFitCache, KrrTailState};
use smarteryou_sensors::UserId;

/// The paper's deployed window: 6 s at 50 Hz = 300 samples.
const WINDOW_SECS: f64 = 6.0;
const SAMPLE_RATE_HZ: f64 = 50.0;
const WINDOW_SAMPLES: usize = (WINDOW_SECS * SAMPLE_RATE_HZ) as usize;

#[derive(Debug, Serialize)]
struct ThroughputRow {
    windows_per_user_per_tick: usize,
    ticks: usize,
    windows: usize,
    secs: f64,
    windows_per_sec: f64,
    /// Logical cores visible to this run (`available_parallelism`). The
    /// tick loop is single-threaded, but recording the machine width makes
    /// per-core rates comparable across differently-sized runners.
    cores: usize,
    /// `windows_per_sec / cores` — the per-core rate the exit guard holds
    /// against the seed floor.
    windows_per_sec_per_core: f64,
}

#[derive(Debug, Serialize)]
struct FleetSize {
    users: usize,
    build_secs: f64,
    rows: Vec<ThroughputRow>,
}

#[derive(Debug, Serialize)]
struct EnrollRow {
    users: usize,
    build_secs: f64,
    users_per_sec: f64,
}

/// Fixture-construction (enrollment) cost per fleet size, derived from the
/// `fleet` rows — no extra builds. Since enrollment went through
/// `FleetEngine::enroll_many` (one shared negative epoch + Gram workspace
/// per fleet), the per-user cost is a closed-form fit and build time must
/// scale near-linearly; the exit guard holds a 10× fleet to ≤ ~15× the
/// build time.
#[derive(Debug, Serialize)]
struct EnrollBench {
    rows: Vec<EnrollRow>,
}

#[derive(Debug, Serialize)]
struct ChurnRow {
    /// How the per-tick working set moves: 0 keeps the same `capacity`
    /// users hot (steady state, no churn after warm-up); `capacity` shifts
    /// the whole working set every tick (worst case: every submit
    /// rehydrates, every tick evicts).
    working_set_stride: usize,
    ticks: usize,
    windows: usize,
    evictions: u64,
    rehydrations: u64,
    secs: f64,
    windows_per_sec: f64,
}

#[derive(Debug, Serialize)]
struct EvictionChurnBench {
    users: usize,
    /// Resident-pipeline cap enforced after every tick.
    capacity: usize,
    rows: Vec<ChurnRow>,
}

#[derive(Debug, Serialize)]
struct ResidentScanRow {
    registered: usize,
    parked: usize,
    ticks: usize,
    windows: usize,
    secs: f64,
    windows_per_sec: f64,
}

/// The O(resident) proof row: tick cost with a huge registered-but-parked
/// tail vs the same resident set alone.
#[derive(Debug, Serialize)]
struct ResidentScanBench {
    resident: usize,
    rows: Vec<ResidentScanRow>,
    /// `rows[1].secs / rows[0].secs` — ≈1.0 when the tick is O(resident).
    parked_overhead_ratio: f64,
}

#[derive(Debug, Serialize)]
struct ShardRow {
    scenario: &'static str,
    ticks: usize,
    windows: usize,
    migrations: u64,
    evictions: u64,
    rehydrations: u64,
    secs: f64,
    windows_per_sec: f64,
}

/// UserId-routed shards over one shared, epoch-fenced snapshot store —
/// steady-state scoring plus a forced-migration churn row (each migration
/// is a fenced evict on the source shard + adopt/rehydrate on the target).
#[derive(Debug, Serialize)]
struct ShardBench {
    users: usize,
    shards: usize,
    capacity_per_shard: usize,
    rows: Vec<ShardRow>,
}

#[derive(Debug, Serialize)]
struct IngestRow {
    scenario: &'static str,
    policy: &'static str,
    queue_capacity_per_shard: usize,
    ticks: usize,
    windows_submitted: usize,
    /// Windows the shard ticks actually scored. Under `BlockingWait` this
    /// **must** equal `windows_submitted` — the run fails otherwise.
    windows_scored: usize,
    secs: f64,
    windows_per_sec: f64,
}

/// Async ingestion in front of the sharded fleet: producers push through
/// the bounded per-shard queues ([`smarteryou_core::engine::IngestRouter`])
/// instead of holding `&mut` fleet access. `steady` feeds one window per
/// user per tick from one thread (queues sized so backpressure never
/// engages); `burst` hammers deliberately tiny `BlockingWait` queues from
/// four concurrent producer threads while the main thread ticks — the
/// worst-case handoff pattern, and the guard that blocking backpressure
/// loses nothing.
#[derive(Debug, Serialize)]
struct IngestBench {
    users: usize,
    shards: usize,
    producer_threads: usize,
    rows: Vec<IngestRow>,
}

#[derive(Debug, Serialize)]
struct TrainingRow {
    scenario: &'static str,
    /// Worker threads behind the [`TrainingService`]; 0 = synchronous
    /// apply-at-tick-boundary mode (retrains execute on the tick thread).
    workers: usize,
    ticks: usize,
    windows: usize,
    retrains_started: u64,
    retrains_completed: u64,
    retrains_canceled: u64,
    /// Peak `retrains_in_flight` observed across the measured ticks — the
    /// async rows must show real overlap, the sync/idle rows must stay 0.
    max_in_flight: usize,
    /// `started − completed − canceled` after the drain loop. Positive =
    /// a retrain was lost, negative = one was double-applied; either fails
    /// the run.
    lost_retrains: i64,
    p50_tick_ms: f64,
    p99_tick_ms: f64,
}

/// Deferred retraining behind the [`TrainingService`]: per-tick latency
/// distribution with 0 retrains in flight (`deferred_idle`), with retrains
/// executing on the tick thread at the boundary (`deferred_sync` — the
/// bit-identical reference mode, see `tests/training_parity.rs`), and with
/// retrains overlapping scoring on worker threads (`deferred_async`). The
/// tick path only wins if the async p99 stays near the idle row while the
/// sync row absorbs the full fit cost.
#[derive(Debug, Serialize)]
struct TrainingBench {
    users: usize,
    retrain_period: usize,
    rows: Vec<TrainingRow>,
}

#[derive(Debug, Serialize)]
struct RetrainRow {
    scenario: &'static str,
    /// Retrain jobs executed (users × rounds).
    jobs: usize,
    /// Per-job fit latency — one confidence-retrain resolved end to end.
    p50_fit_ms: f64,
    p99_fit_ms: f64,
    /// Fit-cache traffic summed over every job's caches: `shared_hits`
    /// are closed-form solves off the shared negative-Gram workspace
    /// (incl. incremental tail slides), `keyed_hits` are per-user keyed
    /// reuse, `misses` are true full-cost stack-and-fit fallbacks.
    shared_hits: u64,
    keyed_hits: u64,
    misses: u64,
}

/// Confidence-retrain latency, legacy stack-and-fit vs the shared-workspace
/// path, at the deployed config: every user retrains against the same
/// pinned negative epoch (the storm shape), then twice more after sliding
/// its positive buffer by one window — the tail-slide case. The storm row
/// must report **zero true fit-cache misses** (the run fails otherwise):
/// one workspace build amortizes across the fleet and every job resolves
/// as an m×m closed-form solve or an incremental Cholesky slide.
#[derive(Debug, Serialize)]
struct RetrainBench {
    users: usize,
    rounds: usize,
    rows: Vec<RetrainRow>,
    /// Legacy p50 / shared p50 — the headline per-job win.
    speedup_p50: f64,
}

#[derive(Debug, Serialize)]
struct KernelRow {
    kernel: &'static str,
    /// Operations timed per path (the per-op rates below divide by this).
    ops: usize,
    reference_ns_per_op: f64,
    fast_ns_per_op: f64,
    /// `reference / fast` — the exit guard fails the run if any fast path
    /// is materially slower than its scalar reference.
    speedup: f64,
}

/// Microbenches for the vectorized kernels at the deployed shapes: the
/// fused single-pass summary and 4-lane batched spectrum at the 300-sample
/// window, the chunked magnitude kernel, and the cache-blocked RBF Gram at
/// the enrollment matrix shape. Each row times the scalar reference against
/// the fast path the fleet rows above actually ran.
#[derive(Debug, Serialize)]
struct KernelBench {
    rows: Vec<KernelRow>,
}

#[derive(Debug, Serialize)]
struct SpectrumMicrobench {
    samples: usize,
    planned_spectra_per_sec: f64,
    dft_reference_spectra_per_sec: f64,
    planned_speedup: f64,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    bench: String,
    quick: bool,
    window_secs: f64,
    sample_rate_hz: f64,
    window_samples: usize,
    /// O(n²) DFT invocations observed while the fleet sizes ran — must be
    /// zero: the production window is served by the planned Bluestein path.
    dft_fallbacks_during_fleet: u64,
    fleet: Vec<FleetSize>,
    /// Batched-enrollment scaling: fixture build cost per fleet size, with
    /// an exit guard against superlinear regressions.
    enroll: EnrollBench,
    /// Throughput with bounded residency: idle pipelines snapshotted to an
    /// in-memory store (full JSON encode/decode per round-trip) and
    /// rehydrated on submit. Decisions stay bit-identical to the unevicted
    /// engine (`tests/persist_parity.rs`); this measures what the churn
    /// costs.
    eviction_churn: EvictionChurnBench,
    /// Tick cost is O(resident), not O(registered): a 99× parked tail must
    /// cost ≈ nothing.
    resident_scan: ResidentScanBench,
    /// 4-shard routed fleet over a shared store, incl. forced-migration
    /// churn. Decisions stay bit-identical to a single engine
    /// (`tests/shard_parity.rs`).
    shard: ShardBench,
    /// Bounded async ingestion queues in front of the 4-shard fleet,
    /// steady + burst. Decisions stay bit-identical to the synchronous
    /// path (`tests/ingest_parity.rs`); `BlockingWait` must lose nothing.
    ingest: IngestBench,
    /// Tick latency under deferred retraining: idle floor, synchronous
    /// apply-at-boundary, and worker-backed async overlap. Sync mode stays
    /// bit-identical to inline retraining (`tests/training_parity.rs`);
    /// every row must account for all of its retrains.
    training: TrainingBench,
    /// Per-job confidence-retrain fit latency, legacy stack-and-fit vs the
    /// shared negative-Gram workspace + incremental Cholesky tail slides.
    /// Results agree to 1e-6 (`tests/training_parity.rs`); the storm row
    /// must run with zero true fit-cache misses.
    retrain: RetrainBench,
    /// Vectorized-kernel microbenches (fused summary, chunked magnitude,
    /// batched spectrum, blocked Gram) — fast vs scalar reference, with an
    /// exit guard that no fast path regressed below its reference.
    kernels: KernelBench,
    spectrum_microbench: SpectrumMicrobench,
}

/// Logical cores visible to the process; 1 when the runtime cannot tell.
fn cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn measure(num_users: usize) -> FleetSize {
    let build_start = Instant::now();
    let mut fixture =
        FleetFixture::build_with_window(num_users, WINDOW_SECS, 0xF1EE7).expect("fixture builds");
    let build_secs = build_start.elapsed().as_secs_f64();

    // Warm up until the core is actually busy — first-touch allocation,
    // branch predictors and the frequency governor all need more than one
    // 5ms tick to settle after the memory-bound fixture build.
    let warm = Instant::now();
    while warm.elapsed().as_secs_f64() < 0.3 {
        fixture.submit_tick(1);
        fixture.tick();
    }

    let mut rows = Vec::new();
    for per_user in [1usize, 4] {
        // Each pass ticks until the sample is long enough to dampen
        // scheduler / frequency-governor noise: at least 5 ticks AND at
        // least 0.3s of measured work (a 100-user tick is ~5ms; 5 of
        // those alone is a coin flip). The row reports the best of five
        // passes — interference is strictly additive, so the fastest pass
        // is the closest estimate of what the machine can actually do.
        const MIN_TICKS: usize = 5;
        const MIN_SECS: f64 = 0.3;
        const PASSES: usize = 5;
        let mut ticks = 0usize;
        let mut windows = 0usize;
        let mut accepts = 0usize;
        let mut rejections = 0usize;
        let mut secs = f64::INFINITY;
        let mut throughput = 0.0f64;
        for _ in 0..PASSES {
            let mut pass_ticks = 0usize;
            let mut pass_windows = 0usize;
            let mut pass_accepts = 0usize;
            let mut pass_rejections = 0usize;
            let start = Instant::now();
            while pass_ticks < MIN_TICKS || start.elapsed().as_secs_f64() < MIN_SECS {
                pass_windows += fixture.submit_tick(per_user);
                let report = fixture.tick();
                pass_accepts += report.accepts();
                pass_rejections += report.rejections();
                pass_ticks += 1;
            }
            let pass_secs = start.elapsed().as_secs_f64();
            let pass_throughput = pass_windows as f64 / pass_secs;
            if pass_throughput > throughput {
                ticks = pass_ticks;
                windows = pass_windows;
                accepts = pass_accepts;
                rejections = pass_rejections;
                secs = pass_secs;
                throughput = pass_throughput;
            }
        }
        let cores = cores();
        let per_core = throughput / cores as f64;
        println!(
            "{num_users:>7} users  {per_user} win/user/tick  {windows:>7} windows in {secs:>7.3}s  \
             {throughput:>12.0} windows/sec  ({per_core:.0}/core × {cores}, accept {accepts}, \
             reject {rejections})"
        );
        rows.push(ThroughputRow {
            windows_per_user_per_tick: per_user,
            ticks,
            windows,
            secs,
            windows_per_sec: throughput,
            cores,
            windows_per_sec_per_core: per_core,
        });
    }
    println!("{num_users:>7} users  fixture build (enrollment + model training): {build_secs:.2}s");
    FleetSize {
        users: num_users,
        build_secs,
        rows,
    }
}

/// Measures tick throughput with eviction enabled: a fleet of `num_users`
/// enrolled pipelines capped at `capacity` resident, driven by a working
/// set of `capacity` active users per tick. Stride 0 is the friendly case
/// (the hot set stays hot); stride = `capacity` rotates the whole working
/// set each tick, so every submit rehydrates from a snapshot and every
/// tick evicts a full working set — the upper bound on churn cost.
fn measure_churn(num_users: usize, capacity: usize) -> EvictionChurnBench {
    let mut fixture =
        FleetFixture::build_with_window(num_users, WINDOW_SECS, 0xCAFE).expect("fixture builds");
    fixture.enable_eviction(capacity);
    // Warm-up: establish the initial resident set and evict the rest.
    fixture.submit_tick_for(0..capacity, 1);
    fixture.tick();

    let mut rows = Vec::new();
    for stride in [0usize, capacity] {
        let ticks = 5;
        let mut windows = 0usize;
        let (evictions_before, rehydrations_before) = fixture.engine_mut().eviction_totals();
        let start = Instant::now();
        for t in 0..ticks {
            // (t + 1): the warm-up left users 0..capacity resident, so the
            // first strided tick must already rotate away from them —
            // otherwise one of the measured ticks is churn-free and the
            // "worst case" number is diluted.
            let first = ((t + 1) * stride) % num_users;
            windows += fixture.submit_tick_for((first..first + capacity).map(|u| u % num_users), 1);
            fixture.tick();
        }
        let secs = start.elapsed().as_secs_f64();
        let (evictions_after, rehydrations_after) = fixture.engine_mut().eviction_totals();
        let evictions = evictions_after - evictions_before;
        let rehydrations = rehydrations_after - rehydrations_before;
        let throughput = windows as f64 / secs;
        println!(
            "{num_users:>7} users  cap {capacity}  stride {stride:>4}  {windows:>6} windows in \
             {secs:>7.3}s  {throughput:>10.0} windows/sec  \
             (evictions {evictions}, rehydrations {rehydrations})"
        );
        rows.push(ChurnRow {
            working_set_stride: stride,
            ticks,
            windows,
            evictions,
            rehydrations,
            secs,
            windows_per_sec: throughput,
        });
    }
    EvictionChurnBench {
        users: num_users,
        capacity,
        rows,
    }
}

/// Measures tick throughput for a fixed 100-resident working set, first
/// with nothing else registered and then with `parked` additional
/// registered-but-parked users. Before the resident-slot index, every tick
/// walked all registered slots; now the parked tail must be free.
fn measure_resident_scan(parked: usize) -> ResidentScanBench {
    let resident = 100usize;
    let mut rows = Vec::new();
    for parked in [0usize, parked] {
        let mut fixture =
            FleetFixture::build_with_window(resident, WINDOW_SECS, 0xD1CE).expect("fixture builds");
        fixture.enable_eviction(resident + 28);
        fixture.park_users(parked);
        // Warm-up tick.
        fixture.submit_tick(1);
        fixture.tick();
        let ticks = 10;
        let mut windows = 0usize;
        let start = Instant::now();
        for _ in 0..ticks {
            windows += fixture.submit_tick(1);
            let report = fixture.tick();
            assert_eq!(report.scanned_slots(), resident, "tick walked parked slots");
        }
        let secs = start.elapsed().as_secs_f64();
        let throughput = windows as f64 / secs;
        println!(
            "{:>7} registered ({resident} resident)  {windows:>6} windows in {secs:>7.3}s  \
             {throughput:>10.0} windows/sec",
            resident + parked
        );
        rows.push(ResidentScanRow {
            registered: resident + parked,
            parked,
            ticks,
            windows,
            secs,
            windows_per_sec: throughput,
        });
    }
    let parked_overhead_ratio = rows[1].secs / rows[0].secs;
    println!("parked-tail overhead ratio: {parked_overhead_ratio:.2}× (≈1.0 = O(resident))");
    ResidentScanBench {
        resident,
        rows,
        parked_overhead_ratio,
    }
}

/// Measures the 4-shard routed fleet: steady-state scoring (all users
/// submitting on their home shards) and a forced-migration churn row where
/// a block of users is rebalanced to neighbouring shards every tick.
fn measure_shard(num_users: usize, num_shards: usize) -> ShardBench {
    // 10% headroom over the mean shard load: hash routing is balanced but
    // not exact, and the steady row must measure scoring, not avoidable
    // eviction churn on the fullest shard.
    let mean = num_users.div_ceil(num_shards);
    let capacity_per_shard = mean + (mean / 10).max(64);
    let build_start = Instant::now();
    let mut fixture = ShardFixture::build(
        num_users,
        num_shards,
        capacity_per_shard,
        WINDOW_SECS,
        0x5AD5,
    )
    .expect("fixture builds");
    println!(
        "{num_users:>7} users / {num_shards} shards  fixture build: {:.2}s",
        build_start.elapsed().as_secs_f64()
    );
    // Warm-up tick.
    fixture.submit_tick();
    fixture.tick();

    let migration_block = (num_users / 40).max(1);
    let mut rows = Vec::new();
    for (scenario, block) in [("steady", 0usize), ("migration_churn", migration_block)] {
        let ticks = 5;
        let mut windows = 0usize;
        let mut migrations = 0u64;
        let totals_before: (u64, u64) = (0..num_shards)
            .map(|s| fixture.fleet().shard(s).eviction_totals())
            .fold((0, 0), |(e, r), (te, tr)| (e + te, r + tr));
        let start = Instant::now();
        for _ in 0..ticks {
            migrations += fixture.migrate_block(block) as u64;
            windows += fixture.submit_tick();
            fixture.tick();
        }
        let secs = start.elapsed().as_secs_f64();
        let totals_after: (u64, u64) = (0..num_shards)
            .map(|s| fixture.fleet().shard(s).eviction_totals())
            .fold((0, 0), |(e, r), (te, tr)| (e + te, r + tr));
        let throughput = windows as f64 / secs;
        println!(
            "{num_users:>7} users / {num_shards} shards  {scenario:<15}  {windows:>7} windows in \
             {secs:>7.3}s  {throughput:>10.0} windows/sec  (migrations {migrations})"
        );
        rows.push(ShardRow {
            scenario,
            ticks,
            windows,
            migrations,
            evictions: totals_after.0 - totals_before.0,
            rehydrations: totals_after.1 - totals_before.1,
            secs,
            windows_per_sec: throughput,
        });
    }
    assert_eq!(
        fixture.fleet().migrations(),
        rows.iter().map(|r| r.migrations).sum::<u64>(),
        "fleet migration counter disagrees with the bench schedule"
    );
    ShardBench {
        users: num_users,
        shards: num_shards,
        capacity_per_shard,
        rows,
    }
}

/// Measures the async ingestion front door on a 4-shard fleet. `steady`:
/// one producer, one window per user per tick, `Reject` queues sized so
/// backpressure never engages — the pure routing+queue overhead vs the
/// synchronous `shard` rows. `burst`: four producer threads blocking-push
/// three windows per user into deliberately tiny `BlockingWait` queues
/// while the main thread ticks — concurrent handoff under constant
/// backpressure. Returns the rows; the caller fails the run if the burst
/// scored fewer windows than were submitted (blocking backpressure must
/// lose nothing).
fn measure_ingest(num_users: usize, num_shards: usize) -> IngestBench {
    let mean = num_users.div_ceil(num_shards);
    let capacity_per_shard = mean + (mean / 10).max(64);
    let producer_threads = 4;
    let build_start = Instant::now();
    // Same seed as the shard scenario: its per-profile enrollment streams
    // are known to converge for every profile.
    let mut fixture = ShardFixture::build(
        num_users,
        num_shards,
        capacity_per_shard,
        WINDOW_SECS,
        0x5AD5,
    )
    .expect("fixture builds");
    println!(
        "{num_users:>7} users / {num_shards} shards  ingest fixture build: {:.2}s",
        build_start.elapsed().as_secs_f64()
    );
    let mut rows = Vec::new();

    // Steady: queues comfortably above the per-shard tick load (hash
    // routing is balanced but not exact).
    let steady_capacity = mean * 2;
    let router = fixture.enable_ingest(steady_capacity, BackpressurePolicy::Reject);
    fixture.ingest_tick(&router);
    fixture.tick(); // warm-up
    let ticks = 5;
    let mut submitted = 0usize;
    let mut scored = 0usize;
    let start = Instant::now();
    for _ in 0..ticks {
        submitted += fixture.ingest_tick(&router);
        for report in fixture.tick() {
            assert!(report.ingest_errors().is_empty(), "ingest delivery failed");
            scored += report.windows_scored();
        }
    }
    let secs = start.elapsed().as_secs_f64();
    let throughput = scored as f64 / secs;
    println!(
        "{num_users:>7} users / {num_shards} shards  async_ingest steady  {scored:>7} windows in \
         {secs:>7.3}s  {throughput:>10.0} windows/sec  (queue cap {steady_capacity}/shard)"
    );
    rows.push(IngestRow {
        scenario: "steady",
        policy: "Reject",
        queue_capacity_per_shard: steady_capacity,
        ticks,
        windows_submitted: submitted,
        windows_scored: scored,
        secs,
        windows_per_sec: throughput,
    });

    // Burst: tiny BlockingWait queues, four concurrent producers pushing
    // three windows per user, main thread draining via ticks.
    let burst_capacity = (mean / 4).max(1);
    let router = fixture.enable_ingest(burst_capacity, BackpressurePolicy::BlockingWait);
    let burst_per_user = 3usize;
    let submitted = num_users * burst_per_user;
    // Producers clone windows out of the shared per-profile pool on the
    // fly: queued memory stays bounded by the queue capacity.
    let feed: Vec<Vec<_>> = fixture.feed().to_vec();
    let profile_of: Vec<usize> = (0..num_users).map(|u| fixture.profile_of(u)).collect();
    let mut scored = 0usize;
    let mut ticks = 0usize;
    let start = Instant::now();
    std::thread::scope(|s| {
        let chunk = num_users.div_ceil(producer_threads);
        for range in (0..num_users).collect::<Vec<_>>().chunks(chunk) {
            let router = router.clone();
            let feed = &feed;
            let profile_of = &profile_of;
            let range = range.to_vec();
            s.spawn(move || {
                for u in range {
                    let pool = &feed[profile_of[u]];
                    for k in 0..burst_per_user {
                        let window = pool[k % pool.len()].clone();
                        router
                            .submit(UserId(u), window)
                            .expect("BlockingWait producers park, they never fail");
                    }
                }
            });
        }
        while scored < submitted {
            for report in fixture.tick() {
                assert!(report.ingest_errors().is_empty(), "ingest delivery failed");
                scored += report.windows_scored();
            }
            ticks += 1;
            if ticks >= 100_000 {
                // Wake parked producers before panicking, so the scope's
                // implicit join cannot hang on a blocked thread.
                router.close();
                panic!("burst scenario never drained");
            }
        }
    });
    let secs = start.elapsed().as_secs_f64();
    let throughput = scored as f64 / secs;
    println!(
        "{num_users:>7} users / {num_shards} shards  async_ingest burst   {scored:>7} windows in \
         {secs:>7.3}s  {throughput:>10.0} windows/sec  (queue cap {burst_capacity}/shard, \
         {producer_threads} producers, {ticks} ticks)"
    );
    rows.push(IngestRow {
        scenario: "burst",
        policy: "BlockingWait",
        queue_capacity_per_shard: burst_capacity,
        ticks,
        windows_submitted: submitted,
        windows_scored: scored,
        secs,
        windows_per_sec: throughput,
    });

    IngestBench {
        users: num_users,
        shards: num_shards,
        producer_threads,
        rows,
    }
}

fn percentile_ms(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Measures per-tick latency (p50/p99) under deferred retraining. Three
/// rows on identical fleets: a policy that never triggers (0 retrains in
/// flight — the floor), an eager policy on the synchronous service (every
/// retrain executes on the tick thread at the boundary), and the same
/// eager policy on a 2-worker service (retrains overlap scoring; the tick
/// only pays the apply). Each row drains to zero in flight afterwards and
/// reports `lost_retrains` — the caller fails the run if any retrain was
/// lost or double-applied.
fn measure_training(num_users: usize, retrain_period: usize) -> TrainingBench {
    // `threshold: 0.0` can never trigger (the gate is `0 ≤ median < 0`);
    // `threshold: 1e9` triggers every `retrain_period` accepted windows.
    let never = RetrainPolicy {
        threshold: 0.0,
        period: 30,
        max_reject_fraction: 1.0,
    };
    let eager = RetrainPolicy {
        threshold: 1e9,
        period: retrain_period,
        max_reject_fraction: 1.0,
    };
    let mut rows = Vec::new();
    for (scenario, policy, workers) in [
        ("deferred_idle", never, 0usize),
        ("deferred_sync", eager, 0),
        ("deferred_async", eager, 2),
    ] {
        let mut fixture = FleetFixture::build_deferred(num_users, WINDOW_SECS, 0x7EA1, policy)
            .expect("fixture builds");
        fixture.enable_training(if workers == 0 {
            TrainingService::synchronous()
        } else {
            TrainingService::with_workers(workers)
        });
        // Warm-up: submit any retrain captured during enrollment build and
        // drain it, so every row starts with zero retrains in flight.
        fixture.submit_tick(1);
        fixture.tick();
        while fixture.engine_mut().retrains_in_flight() > 0 {
            std::thread::sleep(std::time::Duration::from_millis(2));
            fixture.tick();
        }
        let base = fixture.engine_mut().retrain_totals();

        let ticks = 16;
        let mut windows = 0usize;
        let mut max_in_flight = 0usize;
        let mut samples_ms = Vec::with_capacity(ticks);
        for _ in 0..ticks {
            windows += fixture.submit_tick(1);
            let start = Instant::now();
            let report = fixture.tick();
            samples_ms.push(start.elapsed().as_secs_f64() * 1e3);
            max_in_flight = max_in_flight.max(report.retrains_in_flight());
        }
        // Drain: empty ticks submit parked triggers and apply completed
        // jobs; no new windows means no new triggers, so this terminates.
        let mut drain_ticks = 0usize;
        while fixture.engine_mut().retrains_in_flight() > 0 {
            std::thread::sleep(std::time::Duration::from_millis(2));
            fixture.tick();
            drain_ticks += 1;
            assert!(drain_ticks < 100_000, "training bench never drained");
        }
        let totals = fixture.engine_mut().retrain_totals();
        let (started, completed, canceled) =
            (totals.0 - base.0, totals.1 - base.1, totals.2 - base.2);
        let lost_retrains = started as i64 - completed as i64 - canceled as i64;
        samples_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let p50_tick_ms = percentile_ms(&samples_ms, 0.50);
        let p99_tick_ms = percentile_ms(&samples_ms, 0.99);
        println!(
            "{num_users:>7} users  {scenario:<14}  {workers} workers  tick p50 {p50_tick_ms:>8.2}ms  \
             p99 {p99_tick_ms:>8.2}ms  (retrains {started} started / {completed} completed / \
             {canceled} canceled, peak in flight {max_in_flight})"
        );
        rows.push(TrainingRow {
            scenario,
            workers,
            ticks,
            windows,
            retrains_started: started,
            retrains_completed: completed,
            retrains_canceled: canceled,
            max_in_flight,
            lost_retrains,
            p50_tick_ms,
            p99_tick_ms,
        });
    }
    TrainingBench {
        users: num_users,
        retrain_period,
        rows,
    }
}

/// Measures per-job confidence-retrain fit latency at the deployed config.
/// Every user retrains against the same pinned negative epoch — the storm
/// shape the fleet produces when a drift event trips many trackers in one
/// tick — then `rounds - 1` more times after sliding its positive buffer
/// by one window per context. `legacy_stack_and_fit` re-runs the full
/// negative pass + O(n³) refit per job; `shared_workspace_storm` resolves
/// each job off one shared negative-Gram workspace (closed-form m×m solve,
/// then incremental Cholesky tail slides).
fn measure_retrain(num_users: usize, rounds: usize) -> RetrainBench {
    let material =
        retrain_material(num_users, WINDOW_SECS, 0x2E7A).expect("retrain material builds");
    let server = material.server.lock();
    let profiles = material.buffers.len();
    // Per-user positive buffers, slid by one window per context between
    // rounds (pop the oldest, re-append it: removed = added = 1, well
    // inside the tail-slide budget, and fully deterministic).
    let mut positives: Vec<[Vec<Vec<f64>>; 2]> = (0..num_users)
        .map(|u| material.buffers[u % profiles].clone())
        .collect();
    let slide = |positives: &mut [[Vec<Vec<f64>>; 2]]| {
        for per_user in positives.iter_mut() {
            for buf in per_user.iter_mut() {
                let oldest = buf.remove(0);
                buf.push(oldest);
            }
        }
    };

    // Identical retrain-RNG seeds pin every user to the same sampled
    // negative epoch, as a synchronized drift event would.
    let mut rows = Vec::new();
    let mut p50s = Vec::new();
    for scenario in ["legacy_stack_and_fit", "shared_workspace_storm"] {
        let shared = scenario == "shared_workspace_storm";
        let ws_cache = RetrainWorkspaceCache::new();
        let mut rngs: Vec<StdRng> = (0..num_users)
            .map(|_| StdRng::seed_from_u64(0xD21F7))
            .collect();
        let mut epochs: Vec<Option<NegativeEpoch>> = vec![None; num_users];
        let mut caches: Vec<[KrrFitCache; 2]> = (0..num_users)
            .map(|_| [KrrFitCache::default(), KrrFitCache::default()])
            .collect();
        let mut tails: Vec<[Option<KrrTailState>; 2]> = vec![[None, None]; num_users];
        let mut samples_ms = Vec::with_capacity(num_users * rounds);
        for round in 0..rounds {
            if round > 0 {
                slide(&mut positives);
            }
            for u in 0..num_users {
                let start = Instant::now();
                let fitted = if shared {
                    server.train_authenticator_epoch_shared(
                        &positives[u],
                        &material.cfg,
                        &mut rngs[u],
                        &mut epochs[u],
                        &mut caches[u],
                        &mut tails[u],
                        &ws_cache,
                    )
                } else {
                    server.train_authenticator_epoch(
                        &positives[u],
                        &material.cfg,
                        &mut rngs[u],
                        &mut epochs[u],
                        &mut caches[u],
                    )
                };
                samples_ms.push(start.elapsed().as_secs_f64() * 1e3);
                fitted.expect("retrain fits");
            }
        }
        // Rewind the buffers so both scenarios refit identical positives.
        for _ in 1..rounds {
            slide(&mut positives);
        }
        let (shared_hits, keyed_hits, misses) = caches
            .iter()
            .flatten()
            .fold((0u64, 0u64, 0u64), |(s, k, m), c| {
                (s + c.shared_hits(), k + c.keyed_hits(), m + c.misses())
            });
        samples_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let p50_fit_ms = percentile_ms(&samples_ms, 0.50);
        let p99_fit_ms = percentile_ms(&samples_ms, 0.99);
        p50s.push(p50_fit_ms);
        println!(
            "{num_users:>7} users  retrain {scenario:<22}  {} jobs  fit p50 {p50_fit_ms:>7.3}ms  \
             p99 {p99_fit_ms:>7.3}ms  (cache: {shared_hits} shared / {keyed_hits} keyed / \
             {misses} miss)",
            samples_ms.len()
        );
        rows.push(RetrainRow {
            scenario,
            jobs: samples_ms.len(),
            p50_fit_ms,
            p99_fit_ms,
            shared_hits,
            keyed_hits,
            misses,
        });
    }
    let speedup_p50 = p50s[0] / p50s[1].max(1e-9);
    println!("retrain per-job p50 speedup (legacy / shared): {speedup_p50:.1}×");
    RetrainBench {
        users: num_users,
        rounds,
        rows,
        speedup_p50,
    }
}

/// Times each vectorized kernel against its scalar reference at the
/// deployed shapes. Every "fast" column here is the exact code the fleet
/// rows above ran; the references are the flag-off paths the parity suites
/// pin. A magnitude-stream-shaped signal (gravity offset + small
/// fluctuations) keeps the fused variance in its numerically interesting
/// regime.
fn measure_kernels() -> KernelBench {
    use smarteryou_dsp::{axis_magnitude, magnitude_series_into, BatchSpectrumScratch};
    use smarteryou_linalg::Matrix;
    use smarteryou_ml::Kernel;
    use smarteryou_stats::Summary;

    let mut rows = Vec::new();
    let mut time =
        |label: &'static str, ops: usize, reference: &mut dyn FnMut(), fast: &mut dyn FnMut()| {
            // Warm both paths, then interleave measurement order (reference
            // first) so cache state favours neither.
            reference();
            fast();
            let start = Instant::now();
            reference();
            let reference_ns = start.elapsed().as_secs_f64() * 1e9 / ops as f64;
            let start = Instant::now();
            fast();
            let fast_ns = start.elapsed().as_secs_f64() * 1e9 / ops as f64;
            let speedup = reference_ns / fast_ns.max(1e-9);
            println!(
            "kernel {label:<22} reference {reference_ns:>9.1} ns/op  fast {fast_ns:>9.1} ns/op  \
             ({speedup:.2}×)"
        );
            rows.push(KernelRow {
                kernel: label,
                ops,
                reference_ns_per_op: reference_ns,
                fast_ns_per_op: fast_ns,
                speedup,
            });
        };

    // Fused single-pass summary at the 300-sample magnitude stream.
    let signal: Vec<f64> = (0..WINDOW_SAMPLES)
        .map(|i| 9.81 + (i as f64 * 0.23).sin() + 0.4 * (i as f64 * 0.71).cos())
        .collect();
    let iters = 50_000usize;
    time(
        "summary_300",
        iters,
        &mut || {
            for _ in 0..iters {
                std::hint::black_box(Summary::from_slice(std::hint::black_box(&signal)));
            }
        },
        &mut || {
            for _ in 0..iters {
                std::hint::black_box(Summary::from_slice_fused(std::hint::black_box(&signal)));
            }
        },
    );

    // Chunked 3-axis magnitude at 300 samples; the reference is the
    // per-sample `axis_magnitude` map the seed ran.
    let (x, y, z): (Vec<f64>, Vec<f64>, Vec<f64>) = (
        signal.clone(),
        signal.iter().map(|v| v * 0.7 + 0.1).collect(),
        signal.iter().map(|v| v * 0.3 - 0.2).collect(),
    );
    let mut out_ref = Vec::with_capacity(WINDOW_SAMPLES);
    let mut out_fast = Vec::with_capacity(WINDOW_SAMPLES);
    time(
        "magnitude_300",
        iters,
        &mut || {
            for _ in 0..iters {
                out_ref.clear();
                out_ref.extend(
                    x.iter()
                        .zip(&y)
                        .zip(&z)
                        .map(|((&a, &b), &c)| axis_magnitude(a, b, c)),
                );
                std::hint::black_box(&out_ref);
            }
        },
        &mut || {
            for _ in 0..iters {
                magnitude_series_into(&x, &y, &z, &mut out_fast);
                std::hint::black_box(&out_fast);
            }
        },
    );

    // Batched 4-lane spectrum vs four scalar transforms; ns per spectrum.
    let plan = SpectrumPlan::new(WINDOW_SAMPLES);
    let lanes = [&signal, &x, &y, &z];
    let mut scalar_scratch = SpectrumScratch::default();
    let mut batch_scratch = BatchSpectrumScratch::default();
    let mut outs_ref = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    let mut outs_fast = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    let spectra = 4 * 5_000usize;
    time(
        "spectrum_300_batch4",
        spectra,
        &mut || {
            for _ in 0..spectra / 4 {
                for (lane, out) in lanes.iter().zip(outs_ref.iter_mut()) {
                    plan.magnitude_into(lane, &mut scalar_scratch, out);
                }
                std::hint::black_box(&outs_ref);
            }
        },
        &mut || {
            for _ in 0..spectra / 4 {
                let [o0, o1, o2, o3] = &mut outs_fast;
                plan.magnitude_batch4_into(
                    [&signal, &x, &y, &z].map(|v| v.as_slice()),
                    &mut batch_scratch,
                    [o0, o1, o2, o3],
                );
                std::hint::black_box(&outs_fast);
            }
        },
    );

    // Cache-blocked RBF Gram at the enrollment shape (data_size positives
    // per context + sampled negatives ≈ 120 rows × 28 features).
    let (n, m) = (120usize, 28usize);
    let data: Vec<f64> = (0..n * m)
        .map(|i| ((i * 37 % 101) as f64 - 50.0) / 7.0)
        .collect();
    let xmat = Matrix::from_vec(n, m, data).expect("sized");
    let kernel = Kernel::Rbf {
        gamma: 1.0 / m as f64,
    };
    let grams = 400usize;
    time(
        "gram_rbf_120x28",
        grams,
        &mut || {
            for _ in 0..grams {
                std::hint::black_box(kernel.gram(std::hint::black_box(&xmat)));
            }
        },
        &mut || {
            for _ in 0..grams {
                std::hint::black_box(kernel.gram_blocked(std::hint::black_box(&xmat)));
            }
        },
    );

    KernelBench { rows }
}

/// Times the planned spectrum against the O(n²) reference at the deployed
/// 300-sample window. The reference intentionally calls [`smarteryou_dsp::dft`],
/// so this must run *after* the fallback counter has been checked.
fn spectrum_microbench() -> SpectrumMicrobench {
    let signal: Vec<f64> = (0..WINDOW_SAMPLES)
        .map(|i| 9.81 + (i as f64 * 0.23).sin() + 0.4 * (i as f64 * 0.71).cos())
        .collect();

    let plan = SpectrumPlan::new(WINDOW_SAMPLES);
    let mut scratch = SpectrumScratch::default();
    let mut out = Vec::new();
    plan.magnitude_into(&signal, &mut scratch, &mut out); // warm buffers
    let planned_iters = 20_000usize;
    let start = Instant::now();
    for _ in 0..planned_iters {
        plan.magnitude_into(&signal, &mut scratch, &mut out);
        std::hint::black_box(&out);
    }
    let planned_per_sec = planned_iters as f64 / start.elapsed().as_secs_f64();

    // O(n²) reference: mean removal + direct DFT + one-sided scaling, the
    // shape of the pre-plan fallback path.
    let dft_iters = 200usize;
    let start = Instant::now();
    for _ in 0..dft_iters {
        let n = signal.len();
        let mean = signal.iter().sum::<f64>() / n as f64;
        let buf: Vec<smarteryou_dsp::Complex> = signal
            .iter()
            .map(|&s| smarteryou_dsp::Complex::from_real(s - mean))
            .collect();
        let transformed = smarteryou_dsp::dft(&buf);
        let spectrum: Vec<f64> = transformed[..=n / 2]
            .iter()
            .map(|z| z.abs() * 2.0 / n as f64)
            .collect();
        std::hint::black_box(spectrum);
    }
    let dft_per_sec = dft_iters as f64 / start.elapsed().as_secs_f64();

    println!(
        "spectrum @ {WINDOW_SAMPLES} samples: planned {planned_per_sec:.0}/sec, \
         O(n²) reference {dft_per_sec:.0}/sec ({:.1}× faster)",
        planned_per_sec / dft_per_sec
    );
    SpectrumMicrobench {
        samples: WINDOW_SAMPLES,
        planned_spectra_per_sec: planned_per_sec,
        dft_reference_spectra_per_sec: dft_per_sec,
        planned_speedup: planned_per_sec / dft_per_sec,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    smarteryou_bench::header(
        "fleet",
        "batched multi-user scoring throughput (FleetEngine::tick, 300-sample windows)",
    );
    // Benchmarks run the vectorized configuration end to end: blocked Gram
    // for every trainer built from here on (enrollment fits, retrains) and
    // fast extraction on every fixture engine. The parity suites leave both
    // flags off, pinning the reference paths bit-identical to the seed.
    smarteryou_ml::set_fast_gram_default(true);
    let sizes: &[usize] = if quick {
        &[100, 1_000]
    } else {
        &[100, 1_000, 10_000]
    };
    let baseline = dft_fallback_count();
    let mut fleet = Vec::new();
    for &n in sizes {
        fleet.push(measure(n));
        println!();
    }
    // Eviction churn at the mid-size fleet: enough users that bounded
    // residency matters, small enough that the scenario stays a smoke test
    // in --quick runs.
    let (churn_users, churn_capacity) = if quick { (200, 50) } else { (1_000, 250) };
    let eviction_churn = measure_churn(churn_users, churn_capacity);
    println!();
    // O(resident) proof: 100 hot users against a parked tail 19×/99× the
    // resident set.
    let resident_scan = measure_resident_scan(if quick { 1_900 } else { 9_900 });
    println!();
    // The sharded fleet, steady and under forced-migration rebalancing.
    let shard = measure_shard(if quick { 1_000 } else { 10_000 }, 4);
    println!();
    // Async ingestion in front of the shards: steady single-producer rows
    // plus a threaded BlockingWait burst.
    let ingest = measure_ingest(if quick { 1_000 } else { 10_000 }, 4);
    println!();
    // Deferred retraining: tick latency with 0 retrains in flight, with
    // retrains on the tick thread, and with retrains on worker threads.
    let training = measure_training(if quick { 64 } else { 128 }, 6);
    println!();
    // Per-job retrain fit latency: legacy stack-and-fit vs the shared
    // negative-Gram workspace with incremental tail slides.
    let retrain = measure_retrain(if quick { 48 } else { 128 }, 3);
    println!();
    let fallbacks = dft_fallback_count() - baseline;

    // Vectorized kernels, fast vs scalar reference.
    let kernels = measure_kernels();
    println!();

    // The microbench runs the reference DFT on purpose; check the fleet
    // fallback count first so the guard only sees production work.
    let microbench = spectrum_microbench();

    let enroll = EnrollBench {
        rows: fleet
            .iter()
            .map(|f| EnrollRow {
                users: f.users,
                build_secs: f.build_secs,
                users_per_sec: f.users as f64 / f.build_secs.max(1e-9),
            })
            .collect(),
    };
    for row in &enroll.rows {
        println!(
            "enroll {:>7} users in {:>7.3}s  ({:>9.0} users/sec)",
            row.users, row.build_secs, row.users_per_sec
        );
    }
    println!();

    let report = BenchReport {
        bench: "fleet".to_string(),
        quick,
        window_secs: WINDOW_SECS,
        sample_rate_hz: SAMPLE_RATE_HZ,
        window_samples: WINDOW_SAMPLES,
        dft_fallbacks_during_fleet: fallbacks,
        fleet,
        enroll,
        eviction_churn,
        resident_scan,
        shard,
        ingest,
        training,
        retrain,
        kernels,
        spectrum_microbench: microbench,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    // Echo the report before any failure exit so CI logs always carry the
    // machine-readable numbers, fallback regressions included.
    println!("{json}");
    std::fs::write("BENCH_fleet.json", json + "\n").expect("BENCH_fleet.json written");
    println!("wrote BENCH_fleet.json");

    // Enrollment must stay near-linear in fleet size: with the shared
    // negative-Gram workspace a 10× fleet costs ≈1× extra (fixed world
    // setup dominates), so ≤ ~15× is a loose ceiling that still catches a
    // return to per-user refactorisation (historically ~40× per decade).
    for pair in report.enroll.rows.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        if b.users == a.users * 10 && b.build_secs > 15.0 * a.build_secs {
            eprintln!(
                "FAIL: enrollment build cost is superlinear — {} users took {:.2}s but \
                 {} users took {:.2}s (> 15× for 10× the fleet); batched enrollment \
                 must reuse the shared negative workspace",
                a.users, a.build_secs, b.users, b.build_secs
            );
            std::process::exit(1);
        }
    }
    if fallbacks > 0 {
        eprintln!(
            "FAIL: {fallbacks} spectral computation(s) fell back to the O(n²) DFT \
             during fleet scoring — the planned FFT must cover the production window"
        );
        std::process::exit(1);
    }
    // The async ingest scenario must account for every submitted window:
    // BlockingWait is contractually loss-free, and the steady Reject row
    // sizes its queues so backpressure never engages.
    for row in &report.ingest.rows {
        if row.windows_scored != row.windows_submitted {
            eprintln!(
                "FAIL: async_ingest {} row dropped windows ({} submitted, {} scored) — \
                 bounded ingestion must never lose a window",
                row.scenario, row.windows_submitted, row.windows_scored
            );
            std::process::exit(1);
        }
    }
    // The production-config retrain storm must resolve every job off the
    // shared negative-Gram workspace: a true fit-cache miss means a job
    // fell back to the full-cost stack-and-fit, which is exactly the
    // regression the shared path exists to prevent.
    for row in &report.retrain.rows {
        if row.scenario == "shared_workspace_storm" && row.misses > 0 {
            eprintln!(
                "FAIL: shared-workspace retrain storm took {} true fit-cache miss(es) over \
                 {} jobs ({} shared hits, {} keyed hits) — every storm job must resolve off \
                 the shared negative-Gram block or an incremental tail slide",
                row.misses, row.jobs, row.shared_hits, row.keyed_hits
            );
            std::process::exit(1);
        }
    }
    // Every vectorized kernel must actually beat (or at least match) its
    // scalar reference — a fast path slower than the code it replaces is a
    // regression however the fleet rows look. 10% headroom absorbs timer
    // noise on the cheaper kernels.
    for row in &report.kernels.rows {
        if row.fast_ns_per_op > row.reference_ns_per_op * 1.10 {
            eprintln!(
                "FAIL: kernel {} fast path is slower than its scalar reference \
                 ({:.1} ns/op vs {:.1} ns/op) — the vectorized path must not regress",
                row.kernel, row.fast_ns_per_op, row.reference_ns_per_op
            );
            std::process::exit(1);
        }
    }
    // Fleet throughput must stay above the seed per-core floor. The floors
    // are the slowest committed pre-vectorization rows (windows/sec on the
    // 1-core reference runner) with a 0.9× noise margin; the fast path is
    // expected to clear them by ≥2×, so tripping this guard means the
    // vectorized extraction stack regressed badly, not that a run was
    // merely noisy.
    const SEED_FLOORS: &[(usize, usize, f64)] = &[
        (100, 1, 9_008.0),
        (100, 4, 8_707.0),
        (1_000, 1, 7_765.0),
        (1_000, 4, 5_325.0),
        (10_000, 1, 5_137.0),
        (10_000, 4, 4_882.0),
    ];
    for size in &report.fleet {
        for row in &size.rows {
            let Some(&(_, _, floor)) = SEED_FLOORS
                .iter()
                .find(|&&(u, p, _)| u == size.users && p == row.windows_per_user_per_tick)
            else {
                continue;
            };
            if row.windows_per_sec_per_core < floor * 0.9 {
                eprintln!(
                    "FAIL: fleet row ({} users, {} win/user/tick) ran at {:.0} windows/sec/core, \
                     below the seed floor of {:.0} — the fast path must never be slower than \
                     the scalar seed",
                    size.users, row.windows_per_user_per_tick, row.windows_per_sec_per_core, floor
                );
                std::process::exit(1);
            }
        }
    }
    // Every submitted retrain must be accounted for after the drain:
    // started == completed + canceled exactly. Positive drift means a
    // retrain was lost (never applied, never canceled); negative means one
    // was applied or canceled twice.
    for row in &report.training.rows {
        if row.lost_retrains != 0 {
            eprintln!(
                "FAIL: training {} row {} a retrain ({} started, {} completed, {} canceled) — \
                 the deferred path must never lose or double-apply a model",
                row.scenario,
                if row.lost_retrains > 0 {
                    "lost"
                } else {
                    "double-applied"
                },
                row.retrains_started,
                row.retrains_completed,
                row.retrains_canceled
            );
            std::process::exit(1);
        }
    }
}
