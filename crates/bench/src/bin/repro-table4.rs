//! Reproduces **Table IV**: Pearson correlations between smartphone and
//! smartwatch features. The paper's conclusion: cross-device correlations
//! are weak, so the watch contributes *new* information and both devices'
//! features are kept (§V-D).

use smarteryou_bench::{
    candidate_feature_matrices, collect_raw_windows_spaced, header, repro_config,
};
use smarteryou_core::selection::mean_feature_correlation;
use smarteryou_core::FeatureKind;
use smarteryou_sensors::{DeviceKind, RawContext};

fn main() {
    let cfg = repro_config();
    header(
        "Table IV",
        "cross-device feature correlations (rows: watch, cols: phone)",
    );
    let (sessions, per_session) = if smarteryou_bench::quick_mode() {
        (6, 4)
    } else {
        (12, 6)
    };
    // Within one coarse context: mixing contexts makes *both* devices'
    // features flip modes together (the same window is stationary or moving
    // on both wrists), which would read as spurious cross-device
    // correlation.
    let windows = collect_raw_windows_spaced(
        &cfg,
        RawContext::SittingStanding,
        2 * sessions,
        per_session,
        0.01,
    );

    // Table IV uses the 7 surviving features per sensor (Ran and Peak2 f
    // both dropped): 14 columns per device.
    let keep: Vec<usize> = (0..18)
        .filter(|&c| {
            let kind = FeatureKind::ALL[c % 9];
            kind != FeatureKind::Peak2Freq && kind != FeatureKind::Range
        })
        .collect();
    let labels: Vec<String> = keep
        .iter()
        .map(|&c| {
            let sensor = if c < 9 { "acc" } else { "gyr" };
            format!("{sensor}{}", FeatureKind::ALL[c % 9].name())
        })
        .collect();
    let select = |m: &smarteryou_linalg::Matrix| {
        let rows: Vec<Vec<f64>> = m
            .iter_rows()
            .map(|r| keep.iter().map(|&c| r[c]).collect())
            .collect();
        smarteryou_linalg::Matrix::from_rows(&rows).expect("uniform")
    };
    let phone: Vec<_> =
        candidate_feature_matrices(&windows, DeviceKind::Smartphone, cfg.sample_rate)
            .iter()
            .map(select)
            .collect();
    let watch: Vec<_> =
        candidate_feature_matrices(&windows, DeviceKind::Smartwatch, cfg.sample_rate)
            .iter()
            .map(select)
            .collect();
    let corr = mean_feature_correlation(&watch, &phone);

    print!("{:>10}", "");
    for l in &labels {
        print!("{l:>9}");
    }
    println!();
    let mut max_abs = 0.0f64;
    for i in 0..labels.len() {
        print!("{:>10}", labels[i]);
        for j in 0..labels.len() {
            let v = corr[(i, j)];
            max_abs = max_abs.max(v.abs());
            print!("{v:>9.2}");
        }
        println!();
    }
    println!(
        "\npaper: all |ρ| ≤ ~0.42 (no strong cross-device correlation)\n\
         measured max |ρ|: {max_abs:.2}\n\
         conclusion: the smartwatch measures *different* aspects of the\n\
         user's behaviour, so both devices' features are kept (§V-D)."
    );
}
