//! Reproduces **Table II**: Fisher scores of different sensors on the
//! smartphone and smartwatch (the §V-B sensor-selection study).
//!
//! Scores are computed per coarse context and averaged (cross-context
//! behaviour differences are not within-class noise — see
//! `selection::sensor_fisher_scores`).

use smarteryou_bench::{collect_raw_windows, header, num, repro_config};
use smarteryou_core::selection::sensor_fisher_scores;
use smarteryou_sensors::RawContext;

fn main() {
    let cfg = repro_config();
    header("Table II", "Fisher scores of different sensors");
    let (sessions, per_session) = if smarteryou_bench::quick_mode() {
        (8, 4)
    } else {
        (20, 6)
    };

    let stationary = collect_raw_windows(&cfg, RawContext::SittingStanding, sessions, per_session);
    let moving = collect_raw_windows(&cfg, RawContext::MovingAround, sessions, per_session);
    let rows_st = sensor_fisher_scores(&stationary);
    let rows_mv = sensor_fisher_scores(&moving);

    // Paper values (phone, watch) per axis label.
    let paper: &[(&str, f64, f64)] = &[
        ("Acc(x)", 3.13, 3.62),
        ("Acc(y)", 0.8, 0.59),
        ("Acc(z)", 0.38, 0.89),
        ("Mag(x)", 0.005, 0.003),
        ("Mag(y)", 0.001, 0.0049),
        ("Mag(z)", 0.0025, 0.0002),
        ("Gyr(x)", 0.57, 0.24),
        ("Gyr(y)", 1.12, 1.09),
        ("Gyr(z)", 4.074, 0.59),
        ("Ori(x)", 0.0049, 0.0027),
        ("Ori(y)", 0.002, 0.0043),
        ("Ori(z)", 0.0033, 0.0001),
        ("Light", 0.0091, 0.0428),
    ];

    println!(
        "{:<10} {:>12} {:>12}   {:>12} {:>12}",
        "sensor", "paper-phone", "meas-phone", "paper-watch", "meas-watch"
    );
    for (label, p_phone, p_watch) in paper {
        let st = rows_st.iter().find(|r| r.label == *label);
        let mv = rows_mv.iter().find(|r| r.label == *label);
        let (phone, watch) = match (st, mv) {
            (Some(a), Some(b)) => ((a.phone + b.phone) / 2.0, (a.watch + b.watch) / 2.0),
            _ => (f64::NAN, f64::NAN),
        };
        println!(
            "{label:<10} {:>12} {:>12}   {:>12} {:>12}",
            num(*p_phone, 3),
            num(phone, 3),
            num(*p_watch, 3),
            num(watch, 3)
        );
    }
    println!(
        "\nSelection rule (§V-B): keep the motion sensors (accelerometer,\n\
         gyroscope) whose scores dominate; drop the environment-driven\n\
         magnetometer/orientation/light."
    );
}
