//! Calibration probe: prints the headline numbers (Table VII cells, per-
//! context error rates, masquerade survival) at a configurable scale so the
//! simulator's noise knobs can be tuned against the paper's bands.
//!
//! Not part of the repro suite — a development tool.

use smarteryou_bench::{flag_error, flag_value, header, pct};
use smarteryou_core::experiment::{
    collect_population_features, evaluate_authentication, evaluate_per_context,
    masquerade_experiment, ExperimentConfig, MasqueradeConfig,
};
use smarteryou_core::{ContextMode, DeviceSet};
use smarteryou_ml::Algorithm;

const USAGE: &str = "calibrate [--users N] [--windows N] [--noise F] [--threshold F] \
     [--repeats N] [--drift F] [--outliers F] [--skip-table6] [--per-user] [--skip-fig6]";

fn main() {
    let mut cfg = ExperimentConfig::paper_default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--users" => cfg.num_users = flag_value(&a, args.next(), USAGE),
            "--windows" => cfg.windows_per_context = flag_value(&a, args.next(), USAGE),
            "--noise" => cfg.generator.noise_scale = flag_value(&a, args.next(), USAGE),
            "--threshold" => cfg.accept_threshold = flag_value(&a, args.next(), USAGE),
            "--repeats" => cfg.repeats = flag_value(&a, args.next(), USAGE),
            "--drift" => cfg.generator.drift_scale = flag_value(&a, args.next(), USAGE),
            "--outliers" => cfg.generator.outlier_prob = flag_value(&a, args.next(), USAGE),
            "--skip-table6" | "--per-user" | "--skip-fig6" => {}
            other => flag_error(other, "unknown flag", USAGE),
        }
    }
    let skip_table6 = std::env::args().any(|a| a == "--skip-table6");
    println!("config: {cfg:?}");

    let t0 = std::time::Instant::now();
    let data = collect_population_features(&cfg);
    println!("collected features in {:?}", t0.elapsed());

    header("Table VII", "context x device ablation (KRR)");
    for mode in ContextMode::ALL {
        for device in [DeviceSet::PhoneOnly, DeviceSet::Combined] {
            let t = std::time::Instant::now();
            let perf = evaluate_authentication(&data, &cfg, device, mode, Algorithm::Krr);
            println!(
                "{:<12} {:<12} FRR {:>6} FAR {:>6} acc {:>6}   ({:?})",
                mode.name(),
                device.name(),
                pct(perf.frr),
                pct(perf.far),
                pct(perf.accuracy()),
                t.elapsed()
            );
        }
    }

    header("per-context", "KRR per context & device");
    for device in DeviceSet::ALL {
        let per_ctx = evaluate_per_context(&data, &cfg, device);
        println!(
            "{:<12} stationary: {}   moving: {}",
            device.name(),
            per_ctx[0],
            per_ctx[1]
        );
    }

    if !skip_table6 {
        header("Table VI", "algorithms at deployed config");
        for alg in Algorithm::ALL {
            let t = std::time::Instant::now();
            let perf = evaluate_authentication(
                &data,
                &cfg,
                DeviceSet::Combined,
                ContextMode::PerContext,
                alg,
            );
            println!(
                "{:<18} FRR {:>6} FAR {:>6} acc {:>6}  ({:?})",
                alg.name(),
                pct(perf.frr),
                pct(perf.far),
                pct(perf.accuracy()),
                t.elapsed()
            );
        }
    }

    if std::env::args().any(|a| a == "--per-user") {
        header(
            "diag",
            "per-target-user performance (combined, per-context)",
        );
        let mut one = cfg.clone();
        one.repeats = 1;
        for target in 0..cfg.num_users {
            let mut sub = data.clone();
            // Rotate: evaluate with each user as the sole target by keeping
            // the full pool but reporting only this target's CV outcome.
            let users = std::mem::take(&mut sub.users);
            sub.users = users;
            let perf = smarteryou_core::experiment::evaluate_single_user(
                &sub,
                &one,
                DeviceSet::Combined,
                ContextMode::PerContext,
                Algorithm::Krr,
                target,
            );
            println!(
                "user{target:02}: FRR {:>6} FAR {:>6} acc {:>6}",
                pct(perf.frr),
                pct(perf.far),
                pct(perf.accuracy())
            );
        }
    }

    header("Fig 6", "masquerade survival");
    let mcfg = MasqueradeConfig::default();
    let report = masquerade_experiment(&cfg, &mcfg);
    println!("survival: {:?}", report.survival);
    println!(
        "90% detected by: {:?}s, all by {:?}s",
        report.detection_time(0.9),
        report.detection_time(1.0)
    );
    println!("total {:?}", t0.elapsed());
}
