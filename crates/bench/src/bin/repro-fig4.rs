//! Reproduces **Figure 4**: FRR and FAR versus window size under the two
//! contexts, for smartphone / smartwatch / combination. The paper's
//! finding: both rates stabilise once windows reach ~6 seconds.

use smarteryou_bench::{header, num, repro_config, sparkline};
use smarteryou_core::experiment::window_size_sweep;
use smarteryou_core::DeviceSet;
use smarteryou_sensors::UsageContext;

fn main() {
    let mut cfg = repro_config();
    // The sweep regenerates the population at every size; trim the window
    // count so paper-scale runs stay tractable.
    let sizes: Vec<f64> = if smarteryou_bench::quick_mode() {
        cfg.windows_per_context = 40;
        vec![1.0, 2.0, 6.0]
    } else {
        cfg.windows_per_context = 250;
        cfg.data_size = 400;
        vec![1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 16.0]
    };
    header("Figure 4", "FRR/FAR vs window size (seconds)");
    let points = window_size_sweep(&cfg, &sizes);

    for (c, ctx) in UsageContext::ALL.iter().enumerate() {
        println!("\n--- {} ---", ctx.name());
        for (d, device) in DeviceSet::ALL.iter().enumerate() {
            let frr: Vec<f64> = points.iter().map(|p| p.performance[c][d].frr).collect();
            let far: Vec<f64> = points.iter().map(|p| p.performance[c][d].far).collect();
            println!(
                "{:<12} FRR {} [{}]   FAR {} [{}]",
                device.name(),
                sparkline(&frr),
                frr.iter()
                    .map(|v| num(100.0 * v, 1))
                    .collect::<Vec<_>>()
                    .join(", "),
                sparkline(&far),
                far.iter()
                    .map(|v| num(100.0 * v, 1))
                    .collect::<Vec<_>>()
                    .join(", "),
            );
        }
        println!(
            "window sizes (s): {:?}",
            points.iter().map(|p| p.window_secs).collect::<Vec<_>>()
        );
    }
    println!(
        "\npaper's shape: error rates fall with window size and flatten\n\
         beyond ≈6 s; the combination dominates either single device."
    );
}
