//! Reproduces **Table VIII**: battery consumption under four scenarios
//! (§V-H3), using the calibrated component-level power model, plus the
//! sampling-rate scaling prediction of §V-H2.

use smarteryou_bench::{compare_row, header, num};
use smarteryou_sensors::{PowerModel, PowerScenario};

fn main() {
    header("Table VIII", "battery consumption by scenario");
    let model = PowerModel::default();
    for scenario in PowerScenario::ALL {
        compare_row(
            scenario.label(),
            format!("{:.1}%", scenario.paper_value()),
            format!("{:.1}%", model.drain(scenario)),
        );
    }
    compare_row(
        "SmarterYou overhead, idle 12 h",
        "2.1%",
        format!("{:.1}%", model.monitor_overhead(false)),
    );
    compare_row(
        "SmarterYou overhead, in-use 1 h",
        "< 2.4%",
        format!("{:.1}%", model.monitor_overhead(true)),
    );

    println!("\nsampling-rate scaling (§V-H2: cost scales with rate):");
    for rate in [25.0, 50.0, 100.0] {
        let drain = model.drain_for(PowerScenario::LockedMonitorOn, 12.0, rate);
        println!(
            "  {} Hz sampling, locked 12 h: {}%",
            rate as u32,
            num(drain, 2)
        );
    }
}
