//! Reproduces **Figure 6**: fraction of masquerading (mimicry) adversaries
//! still authenticated as time progresses (§V-G). The paper: ~90 % of
//! adversaries are de-authenticated within 6 s (one window) and all by 18 s.

use smarteryou_bench::{compare_row, header, num, repro_config, sparkline};
use smarteryou_core::experiment::{masquerade_experiment, MasqueradeConfig};

fn main() {
    let cfg = repro_config();
    header("Figure 6", "fraction of adversaries with access vs time");
    let mcfg = MasqueradeConfig::default();
    let report = masquerade_experiment(&cfg, &mcfg);

    println!(
        "survival curve {} over {} trials",
        sparkline(&report.survival),
        report.trials
    );
    for (k, s) in report.survival.iter().enumerate() {
        println!(
            "t = {:>5.1}s   fraction with access: {}",
            k as f64 * report.window_secs,
            num(*s, 3)
        );
    }
    compare_row(
        "90% of adversaries rejected by",
        "6 s",
        report
            .detection_time(0.9)
            .map_or("never".into(), |t| format!("{t:.0} s")),
    );
    compare_row(
        "98% of adversaries rejected by",
        "18 s",
        report
            .detection_time(0.98)
            .map_or(">60 s".into(), |t| format!("{t:.0} s")),
    );
    println!(
        "\ntheoretical check (§V-G): with per-window FAR p, survival after\n\
         n windows ≈ pⁿ; at the measured first-window rate p = {:.2} the\n\
         three-window survival would be {:.4}.",
        report.survival[1],
        report.survival[1].powi(3)
    );
}
