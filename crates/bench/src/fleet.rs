//! Shared fixtures for the fleet-engine throughput benchmarks: a simulated
//! population of enrolled pipelines behind a [`FleetEngine`] (or a
//! [`ShardedFleet`]), plus a window feed that keeps every tick supplied
//! with fresh sensor windows.
//!
//! Used by `benches/fleet.rs` (criterion latency samples) and the
//! `fleet` binary (windows/sec at 100 / 1k / 10k users). Distinct sensor
//! profiles are capped at [`FleetFixture::MAX_PROFILES`] — beyond that,
//! users cycle through the profile pool, which keeps fixture construction
//! linear in profile count while every user still owns a full pipeline,
//! model set and RNG stream.

use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use smarteryou_core::engine::{
    BackpressurePolicy, FleetEngine, IngestRouter, ShardedFleet, TickReport, TrainingService,
};
use smarteryou_core::persist::MemorySnapshotStore;
use smarteryou_core::{
    ContextDetector, ContextDetectorConfig, CoreError, DeviceSet, FeatureExtractor, ResponsePolicy,
    RetrainMode, RetrainPolicy, SmarterYou, SystemConfig, TrainingHandle, TrainingServer,
};
use smarteryou_sensors::{
    DualDeviceWindow, Population, RawContext, TraceGenerator, UserId, WindowSpec,
};

/// Cap on distinct sensor profiles (fixture construction cost is linear in
/// this, while user count can grow to fleet scale).
const MAX_PROFILES: usize = 32;

/// The shared infrastructure every benchmark fleet is built on: a trained
/// context detector, an anonymized negative pool, and per-profile
/// enrollment + authentication window material.
struct FleetWorld {
    cfg: SystemConfig,
    detector: ContextDetector,
    server: Arc<Mutex<TrainingServer>>,
    /// Enrollment windows per profile (shared by all users of the profile).
    enrollment: Vec<Vec<DualDeviceWindow>>,
    /// Authentication windows per profile, cycled per tick.
    feed: Vec<Vec<DualDeviceWindow>>,
    profiles: usize,
}

fn build_world(num_users: usize, window_secs: f64, seed: u64) -> Result<FleetWorld, CoreError> {
    assert!(num_users > 0, "fleet needs at least one user");
    let profiles = num_users.min(MAX_PROFILES);
    let population = Population::generate(profiles + 4, seed);
    let cfg = SystemConfig::paper_default()
        .with_window_secs(window_secs)
        .with_data_size(40);
    let spec = WindowSpec::from_seconds(cfg.window_secs(), cfg.sample_rate());
    let extractor = FeatureExtractor::paper_default(cfg.sample_rate());

    // Anonymized negative pool + user-agnostic context detector from the
    // four reserve users.
    let mut ctx_features = Vec::new();
    let mut ctx_labels = Vec::new();
    let mut server = TrainingServer::new();
    for user in &population.users()[profiles..] {
        let mut gen = TraceGenerator::new(user.clone(), seed ^ 0x9E37);
        for raw in [RawContext::SittingStanding, RawContext::MovingAround] {
            let windows = gen.generate_windows(raw, spec, 25);
            for w in &windows {
                ctx_features.push(extractor.context_features(w));
                ctx_labels.push(raw.coarse());
            }
            server.contribute(
                raw.coarse(),
                windows
                    .iter()
                    .map(|w| extractor.auth_features(w, DeviceSet::Combined)),
            );
        }
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF00D);
    let detector = ContextDetector::train(
        extractor,
        &ctx_features,
        &ctx_labels,
        ContextDetectorConfig {
            num_trees: 16,
            max_depth: 8,
        },
        &mut rng,
    )?;
    let server = Arc::new(Mutex::new(server));

    // Per-profile window material: one enrollment stream (shared by all
    // users of the profile) and one authentication feed.
    let mut enrollment: Vec<Vec<DualDeviceWindow>> = Vec::with_capacity(profiles);
    let mut feed: Vec<Vec<DualDeviceWindow>> = Vec::with_capacity(profiles);
    for (p, user) in population.users()[..profiles].iter().enumerate() {
        let mut gen = TraceGenerator::new(user.clone(), seed ^ (p as u64) << 3);
        let mut enroll = Vec::new();
        for round in 0..26 {
            let ctx = if round % 2 == 0 {
                RawContext::SittingStanding
            } else {
                RawContext::MovingAround
            };
            enroll.extend(gen.generate_windows(ctx, spec, 2));
        }
        enrollment.push(enroll);
        let mut ticks = Vec::new();
        for ctx in [RawContext::SittingStanding, RawContext::MovingAround] {
            ticks.extend(gen.generate_windows(ctx, spec, 16));
        }
        // The ingest tier projects authentication windows down to the two
        // motion streams the pipeline consumes (see
        // `DualDeviceWindow::retain_motion`): every per-tick clone and
        // inbox hop then moves half the bytes. Enrollment streams stay
        // full-width — they are processed once, not per tick.
        for w in &mut ticks {
            w.retain_motion();
        }
        feed.push(ticks);
    }

    Ok(FleetWorld {
        cfg,
        detector,
        server,
        enrollment,
        feed,
        profiles,
    })
}

/// Enrolls one scratch template pipeline per profile through the
/// per-window path and harvests its per-context enrollment buffers — the
/// feature-level material batched enrollment
/// ([`FleetEngine::enroll_many`]) installs into every user of the
/// profile. O(profiles), bounded by [`FleetFixture::MAX_PROFILES`], so the
/// per-user cost of fixture construction is the shared-workspace fit, not
/// window processing.
fn harvest_enrollment_buffers(
    world: &FleetWorld,
    seed: u64,
) -> Result<Vec<[Vec<Vec<f64>>; 2]>, CoreError> {
    let mut buffers = Vec::with_capacity(world.profiles);
    for p in 0..world.profiles {
        let mut template = SmarterYou::new(
            world.cfg.clone(),
            world.detector.clone(),
            world.server.clone(),
            // Scratch seed, distinct from any registered user's stream.
            seed ^ 0xE17A ^ ((p as u64) << 7),
        )?
        .with_response_policy(ResponsePolicy {
            rejects_to_lock: usize::MAX,
        });
        // Context misdetections can leave a buffer short; repeat the
        // profile's enrollment stream until the buffers fill.
        for _pass in 0..9 {
            if template.authenticator().is_some() {
                break;
            }
            for w in &world.enrollment[p] {
                template.process_window(w)?;
            }
        }
        assert!(
            template.authenticator().is_some(),
            "profile {p} failed to enroll"
        );
        buffers.push(template.enrollment_buffers().clone());
    }
    Ok(buffers)
}

/// Material for the retrain-latency bench rows: the shared training
/// server (with its anonymized negative pool), the deployed system config,
/// and per-profile enrollment feature buffers — the positive class a
/// confidence-triggered retrain refits on.
pub struct RetrainMaterial {
    /// Deployed system configuration (window length, data size, ρ).
    pub cfg: SystemConfig,
    /// Training server holding the anonymized negative pool.
    pub server: Arc<Mutex<TrainingServer>>,
    /// Per-profile positive feature buffers, one `[stationary, moving]`
    /// pair each; users beyond the profile cap cycle through these.
    pub buffers: Vec<[Vec<Vec<f64>>; 2]>,
}

/// Builds the world + harvested enrollment buffers the retrain bench
/// refits against, without registering a fleet (the bench times the
/// training-handle calls directly, not engine ticks).
///
/// # Errors
///
/// Propagates pipeline construction/training failures.
///
/// # Panics
///
/// Panics if `num_users` is zero or a profile fails to enroll.
pub fn retrain_material(
    num_users: usize,
    window_secs: f64,
    seed: u64,
) -> Result<RetrainMaterial, CoreError> {
    let world = build_world(num_users, window_secs, seed)?;
    let buffers = harvest_enrollment_buffers(&world, seed)?;
    Ok(RetrainMaterial {
        cfg: world.cfg,
        server: world.server,
        buffers,
    })
}

/// A ready-to-tick fleet: every registered user has finished enrollment and
/// authenticates windows drawn from their sensor profile.
pub struct FleetFixture {
    engine: FleetEngine,
    server: Arc<Mutex<TrainingServer>>,
    /// Authentication windows per profile, cycled per tick.
    feed: Vec<Vec<DualDeviceWindow>>,
    /// Profile index per registered user.
    profile_of: Vec<usize>,
    cursor: usize,
}

impl FleetFixture {
    /// Cap on distinct sensor profiles (fixture construction cost is linear
    /// in this, while user count can grow to fleet scale).
    pub const MAX_PROFILES: usize = MAX_PROFILES;

    /// Builds a fleet of `num_users` enrolled pipelines on short 2 s
    /// windows (the historical baseline configuration).
    ///
    /// # Errors
    ///
    /// Propagates pipeline construction/training failures.
    ///
    /// # Panics
    ///
    /// Panics if `num_users` is zero or a pipeline fails to finish
    /// enrollment on its seeded window stream.
    pub fn build(num_users: usize, seed: u64) -> Result<Self, CoreError> {
        Self::build_with_window(num_users, 2.0, seed)
    }

    /// Builds a fleet of `num_users` enrolled pipelines with
    /// `window_secs`-long windows at 50 Hz. The paper's deployed window is
    /// 6 s (300 samples — not a power of two, i.e. the Bluestein FFT path).
    ///
    /// # Errors
    ///
    /// Propagates pipeline construction/training failures.
    ///
    /// # Panics
    ///
    /// Panics if `num_users` is zero or a pipeline fails to finish
    /// enrollment on its seeded window stream.
    pub fn build_with_window(
        num_users: usize,
        window_secs: f64,
        seed: u64,
    ) -> Result<Self, CoreError> {
        Self::build_inner(num_users, window_secs, seed, None)
    }

    /// Builds a fleet whose pipelines run [`RetrainMode::Deferred`] under
    /// `retrain` — the training-bench configuration. The caller attaches a
    /// [`TrainingService`] afterwards (see
    /// [`FleetFixture::enable_training`]); any retrain triggered before the
    /// service is attached parks as a pending request and is submitted on
    /// the first serviced tick.
    ///
    /// # Errors
    ///
    /// Propagates pipeline construction/training failures.
    ///
    /// # Panics
    ///
    /// Panics if `num_users` is zero or a pipeline fails to finish
    /// enrollment on its seeded window stream.
    pub fn build_deferred(
        num_users: usize,
        window_secs: f64,
        seed: u64,
        retrain: RetrainPolicy,
    ) -> Result<Self, CoreError> {
        Self::build_inner(num_users, window_secs, seed, Some(retrain))
    }

    fn build_inner(
        num_users: usize,
        window_secs: f64,
        seed: u64,
        retrain: Option<RetrainPolicy>,
    ) -> Result<Self, CoreError> {
        let world = build_world(num_users, window_secs, seed)?;
        // Window processing happens once per *profile*; users enroll on the
        // harvested feature buffers through the batched entry point below.
        let buffers = harvest_enrollment_buffers(&world, seed)?;

        // Benchmarks run the vectorized fast-extraction path (the deployed
        // configuration); the parity suites exercise the scalar reference,
        // which is the library default.
        let mut engine = FleetEngine::new().with_fast_extraction(true);
        let mut profile_of = Vec::with_capacity(num_users);
        for u in 0..num_users {
            let profile = u % world.profiles;
            profile_of.push(profile);
            let mut pipeline = SmarterYou::new(
                world.cfg.clone(),
                world.detector.clone(),
                world.server.clone(),
                seed ^ (u as u64 + 1),
            )?
            // Fleet monitoring keeps scoring after rejections; locking every
            // device on its first odd window would make throughput numbers
            // unrepresentative.
            .with_response_policy(ResponsePolicy {
                rejects_to_lock: usize::MAX,
            });
            if let Some(policy) = retrain {
                pipeline = pipeline
                    .with_retrain_policy(policy)
                    .with_retrain_mode(RetrainMode::Deferred);
            }
            engine.register(UserId(u), pipeline)?;
        }
        // One pinned negative epoch + shared Gram workspace for the whole
        // fleet: per-user cost is the closed-form fit off the shared block.
        let batch: Vec<(UserId, [Vec<Vec<f64>>; 2])> = profile_of
            .iter()
            .enumerate()
            .map(|(u, &p)| (UserId(u), buffers[p].clone()))
            .collect();
        let enrolled = engine.enroll_many(batch, &mut StdRng::seed_from_u64(seed ^ 0xBA7C4))?;
        assert_eq!(
            enrolled, num_users,
            "batched enrollment must cover the fleet"
        );
        for u in 0..num_users {
            assert!(
                engine
                    .pipeline(UserId(u))
                    .expect("registered")
                    .authenticator()
                    .is_some(),
                "user {u} failed to enroll"
            );
        }

        Ok(FleetFixture {
            engine,
            server: world.server,
            feed: world.feed,
            profile_of,
            cursor: 0,
        })
    }

    /// Number of registered users (resident or parked).
    pub fn num_users(&self) -> usize {
        self.engine.len()
    }

    /// Switches the engine to bounded residency: at most `capacity`
    /// pipelines stay in memory after each tick, the rest round-tripping
    /// through an in-memory snapshot store (the serialized wire format, so
    /// the measured churn cost includes full encode/decode). Called after
    /// enrollment so fixture construction itself is unaffected.
    pub fn enable_eviction(&mut self, capacity: usize) {
        self.engine
            .enable_eviction(Box::new(MemorySnapshotStore::new()), capacity);
    }

    /// Attaches (or, once no retrains are in flight, replaces) the
    /// engine's [`TrainingService`]. Deferred-mode pipelines park their
    /// retrain triggers until a service is attached, so calling this after
    /// [`FleetFixture::build_deferred`] + warm-up gives the training bench
    /// a clean starting point.
    pub fn enable_training(&mut self, service: TrainingService) {
        self.engine.enable_training(service);
    }

    /// Registers `count` additional users as **parked** entries (no
    /// pipeline, no snapshot — they never submit): the registered-but-idle
    /// long tail a production shard carries. Requires
    /// [`FleetFixture::enable_eviction`] first. This is what the
    /// `resident_scan` bench scenario scales up to prove ticks are
    /// O(resident).
    pub fn park_users(&mut self, count: usize) {
        let base = self.engine.len();
        for k in 0..count {
            let server: Arc<dyn TrainingHandle> = self.server.clone();
            self.engine
                .register_parked(UserId(base + k), server)
                .expect("park user");
        }
    }

    /// Queues `per_user` fresh windows for each user in `users` (indices
    /// into the registered fleet); returns the number of windows queued.
    /// Unlike [`FleetFixture::submit_tick`], this touches only a subset —
    /// the access pattern that makes an eviction policy earn its keep.
    pub fn submit_tick_for(
        &mut self,
        users: impl IntoIterator<Item = usize>,
        per_user: usize,
    ) -> usize {
        let mut queued = 0;
        for u in users {
            let pool = &self.feed[self.profile_of[u]];
            for k in 0..per_user {
                let window = pool[(self.cursor + k) % pool.len()].clone();
                self.engine
                    .submit(UserId(u), window)
                    .expect("user registered");
                queued += 1;
            }
        }
        self.cursor = (self.cursor + per_user) % self.feed[0].len().max(1);
        queued
    }

    /// Borrows the engine (e.g. for direct `score_ticked` calls).
    pub fn engine_mut(&mut self) -> &mut FleetEngine {
        &mut self.engine
    }

    /// Queues `per_user` fresh windows for every user with a pipeline (the
    /// first `num_users` registered; parked extras from
    /// [`FleetFixture::park_users`] stay idle); returns the number of
    /// windows queued.
    pub fn submit_tick(&mut self, per_user: usize) -> usize {
        let users = self.profile_of.len();
        self.submit_tick_for(0..users, per_user)
    }

    /// Scores everything queued.
    ///
    /// # Panics
    ///
    /// Panics on pipeline training failures (not expected after enrollment).
    pub fn tick(&mut self) -> TickReport {
        let report = self.engine.tick();
        assert!(
            report.errors().is_empty(),
            "tick failed: {:?}",
            report.errors()
        );
        report
    }
}

/// A ready-to-tick **sharded** fleet: `num_users` enrolled pipelines routed
/// over N shards that share one in-memory snapshot store.
///
/// Construction processes enrollment windows once per sensor profile and
/// then enrolls every user through [`ShardedFleet::enroll_many`] — one
/// shared negative epoch and Gram workspace per shard, with each user
/// paying only the closed-form fit. Every user owns a full in-memory
/// pipeline with its own RNG stream, but window-level work stays linear in
/// profile count, which is what makes a 10k-user shard scenario practical
/// in CI.
pub struct ShardFixture {
    fleet: ShardedFleet,
    feed: Vec<Vec<DualDeviceWindow>>,
    profile_of: Vec<usize>,
    cursor: usize,
    /// Rotating cursor for forced-migration churn.
    migrate_next: usize,
}

impl ShardFixture {
    /// Builds `num_users` enrolled users over `num_shards` shards with
    /// `capacity_per_shard` resident pipelines each.
    ///
    /// # Errors
    ///
    /// Propagates pipeline construction/training failures.
    ///
    /// # Panics
    ///
    /// Panics if `num_users`, `num_shards` or `capacity_per_shard` is zero,
    /// or if a profile pipeline fails to finish enrollment.
    pub fn build(
        num_users: usize,
        num_shards: usize,
        capacity_per_shard: usize,
        window_secs: f64,
        seed: u64,
    ) -> Result<Self, CoreError> {
        let world = build_world(num_users, window_secs, seed)?;
        let buffers = harvest_enrollment_buffers(&world, seed)?;

        // Same as `FleetFixture`: benches run the fast-extraction path.
        let mut fleet = ShardedFleet::new(
            num_shards,
            Box::new(MemorySnapshotStore::new()),
            capacity_per_shard,
        )
        .with_fast_extraction(true);
        let mut profile_of = Vec::with_capacity(num_users);
        for u in 0..num_users {
            let profile = u % world.profiles;
            profile_of.push(profile);
            let pipeline = SmarterYou::new(
                world.cfg.clone(),
                world.detector.clone(),
                world.server.clone(),
                seed ^ (u as u64 + 1),
            )?
            .with_response_policy(ResponsePolicy {
                rejects_to_lock: usize::MAX,
            });
            fleet.register(UserId(u), pipeline)?;
        }
        let batch: Vec<(UserId, [Vec<Vec<f64>>; 2])> = profile_of
            .iter()
            .enumerate()
            .map(|(u, &p)| (UserId(u), buffers[p].clone()))
            .collect();
        let enrolled = fleet.enroll_many(batch, &mut StdRng::seed_from_u64(seed ^ 0xBA7C4))?;
        assert_eq!(
            enrolled, num_users,
            "batched enrollment must cover the fleet"
        );

        Ok(ShardFixture {
            fleet,
            feed: world.feed,
            profile_of,
            cursor: 0,
            migrate_next: 0,
        })
    }

    /// Number of registered users.
    pub fn num_users(&self) -> usize {
        self.fleet.len()
    }

    /// Borrows the sharded fleet.
    pub fn fleet(&self) -> &ShardedFleet {
        &self.fleet
    }

    /// Enables (or reconfigures, once the queues are empty) the async
    /// ingestion front door — see
    /// [`ShardedFleet::enable_ingest`].
    pub fn enable_ingest(
        &mut self,
        queue_capacity_per_shard: usize,
        policy: BackpressurePolicy,
    ) -> IngestRouter {
        self.fleet.enable_ingest(queue_capacity_per_shard, policy)
    }

    /// The per-profile authentication window pool — producer threads clone
    /// windows out of this on the fly (cloning per push keeps the bench's
    /// memory bounded by the queue capacity, not the burst size).
    pub fn feed(&self) -> &[Vec<DualDeviceWindow>] {
        &self.feed
    }

    /// The sensor profile backing user `u`.
    pub fn profile_of(&self, u: usize) -> usize {
        self.profile_of[u]
    }

    /// Queues one fresh window for every user **through the ingest
    /// router** instead of the synchronous submit path; returns the number
    /// of windows queued.
    ///
    /// # Panics
    ///
    /// Panics if the router rejects a window — steady-state rows must size
    /// their queues so backpressure never engages.
    pub fn ingest_tick(&mut self, router: &IngestRouter) -> usize {
        for u in 0..self.profile_of.len() {
            let pool = &self.feed[self.profile_of[u]];
            let window = pool[self.cursor % pool.len()].clone();
            router
                .submit(UserId(u), window)
                .expect("steady ingest must not hit backpressure");
        }
        self.cursor += 1;
        self.profile_of.len()
    }

    /// Queues one fresh window for every user on their owning shard.
    pub fn submit_tick(&mut self) -> usize {
        for u in 0..self.profile_of.len() {
            let pool = &self.feed[self.profile_of[u]];
            let window = pool[self.cursor % pool.len()].clone();
            self.fleet.submit(UserId(u), window).expect("registered");
        }
        self.cursor += 1;
        self.profile_of.len()
    }

    /// Force-migrates the next `count` users (round-robin over the fleet)
    /// to their owning shard's neighbour — the rebalancing churn the
    /// `migration_churn` bench row measures. Returns how many migrations
    /// were performed.
    pub fn migrate_block(&mut self, count: usize) -> usize {
        let num_users = self.profile_of.len();
        let num_shards = self.fleet.num_shards();
        for _ in 0..count {
            let id = UserId(self.migrate_next % num_users);
            self.migrate_next += 1;
            let target = (self.fleet.shard_of(id).expect("registered") + 1) % num_shards;
            self.fleet.migrate(id, target).expect("migrate");
        }
        count
    }

    /// Ticks every shard; returns the per-shard reports.
    ///
    /// # Panics
    ///
    /// Panics on pipeline failures (not expected after enrollment).
    pub fn tick(&mut self) -> Vec<TickReport> {
        let reports = self.fleet.tick();
        for report in &reports {
            assert!(
                report.errors().is_empty(),
                "tick failed: {:?}",
                report.errors()
            );
        }
        reports
    }
}
