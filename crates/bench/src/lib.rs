//! Shared helpers for the `repro-*` binaries: table formatting and
//! paper-vs-measured reporting.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see `DESIGN.md` for the index) and prints the paper's value next to the
//! measured one. Run them with `cargo run --release -p smarteryou-bench
//! --bin repro-<id>`.

pub mod fleet;

use std::fmt::Display;

/// Prints a section header for one experiment.
pub fn header(id: &str, title: &str) {
    println!();
    println!("================================================================");
    println!("{id}: {title}");
    println!("================================================================");
}

/// Prints one `label: paper vs measured` comparison row.
pub fn compare_row(label: &str, paper: impl Display, measured: impl Display) {
    println!("{label:<42} paper {paper:>10}    measured {measured:>10}");
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", 100.0 * v)
}

/// Formats a float with the given precision.
pub fn num(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

/// Renders a simple ASCII sparkline of a series (used for figure shapes).
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);
    values
        .iter()
        .map(|v| BARS[(((v - lo) / span) * 7.0).round() as usize])
        .collect()
}

/// Parses `--quick` from the command line: repro binaries run at paper
/// scale by default and at test scale with `--quick`.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Reports a CLI flag error — naming the offending flag — prints the
/// binary's usage line, and exits with status 1. For development tools
/// that hand-roll flag loops; a typo should produce a diagnosis, not a
/// panic backtrace.
pub fn flag_error(flag: &str, problem: &str, usage: &str) -> ! {
    eprintln!("error: {flag}: {problem}");
    eprintln!("usage: {usage}");
    std::process::exit(1);
}

/// Parses the value of `flag` from the argument stream: `value` is the
/// token following the flag (if any). Missing or unparsable values print
/// the usage line and exit 1, naming the flag.
pub fn flag_value<T: std::str::FromStr>(flag: &str, value: Option<String>, usage: &str) -> T {
    let raw = match value {
        Some(raw) => raw,
        None => flag_error(flag, "expected a value", usage),
    };
    match raw.parse() {
        Ok(parsed) => parsed,
        Err(_) => flag_error(
            flag,
            &format!(
                "invalid value {raw:?} (expected {})",
                std::any::type_name::<T>()
            ),
            usage,
        ),
    }
}

/// The experiment configuration a repro binary should use.
pub fn repro_config() -> smarteryou_core::experiment::ExperimentConfig {
    if quick_mode() {
        smarteryou_core::experiment::ExperimentConfig::quick()
    } else {
        smarteryou_core::experiment::ExperimentConfig::paper_default()
    }
}

/// Generates multi-session raw windows per user in one coarse context —
/// the input shape the §V-B/C/D selection studies need (see
/// `smarteryou_core::selection::sensor_fisher_scores` for why multi-session
/// single-context data is required).
pub fn collect_raw_windows(
    cfg: &smarteryou_core::experiment::ExperimentConfig,
    context: smarteryou_sensors::RawContext,
    sessions: usize,
    per_session: usize,
) -> Vec<Vec<smarteryou_sensors::DualDeviceWindow>> {
    collect_raw_windows_spaced(cfg, context, sessions, per_session, 0.2)
}

/// [`collect_raw_windows`] with an explicit between-session day step.
/// The correlation tables (III/IV) use a *short* span: over weeks, shared
/// behavioural drift makes every pair of features co-vary, which would
/// swamp the window-level correlation structure the paper measures.
pub fn collect_raw_windows_spaced(
    cfg: &smarteryou_core::experiment::ExperimentConfig,
    context: smarteryou_sensors::RawContext,
    sessions: usize,
    per_session: usize,
    day_step: f64,
) -> Vec<Vec<smarteryou_sensors::DualDeviceWindow>> {
    use smarteryou_sensors::{Population, TraceGenerator};
    let population = Population::generate(cfg.num_users, cfg.seed);
    let spec = cfg.window_spec();
    population
        .iter()
        .map(|u| {
            let mut gen = TraceGenerator::with_config(u.clone(), cfg.seed ^ 0xF00D, cfg.generator);
            let mut out = Vec::with_capacity(sessions * per_session);
            for _ in 0..sessions {
                gen.advance_days(day_step);
                out.extend(gen.generate_windows(context, spec, per_session));
            }
            out
        })
        .collect()
}

/// Per-user candidate-feature matrices (18 columns: 9 kinds × accel, gyro)
/// for one device, from raw windows — the layout expected by
/// `selection::ks_feature_quality` and `selection::mean_feature_correlation`.
pub fn candidate_feature_matrices(
    windows_by_user: &[Vec<smarteryou_sensors::DualDeviceWindow>],
    device: smarteryou_sensors::DeviceKind,
    sample_rate: f64,
) -> Vec<smarteryou_linalg::Matrix> {
    use smarteryou_core::FeatureSet;
    use smarteryou_sensors::SensorKind;
    let set = FeatureSet::all_candidates();
    windows_by_user
        .iter()
        .map(|windows| {
            let rows: Vec<Vec<f64>> = windows
                .iter()
                .map(|w| {
                    let dev = w.device(device);
                    let mut row =
                        set.extract(&dev.magnitude(SensorKind::Accelerometer), sample_rate);
                    row.extend(set.extract(&dev.magnitude(SensorKind::Gyroscope), sample_rate));
                    row
                })
                .collect();
            smarteryou_linalg::Matrix::from_rows(&rows).expect("uniform width")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.981), "98.1%");
    }

    #[test]
    fn flag_value_parses_well_formed_input() {
        let users: usize = flag_value("--users", Some("12".to_string()), "usage");
        assert_eq!(users, 12);
        let noise: f64 = flag_value("--noise", Some("0.25".to_string()), "usage");
        assert_eq!(noise, 0.25);
    }

    #[test]
    fn raw_window_collection_shapes() {
        let mut cfg = smarteryou_core::experiment::ExperimentConfig::quick();
        cfg.num_users = 2;
        let windows =
            collect_raw_windows(&cfg, smarteryou_sensors::RawContext::SittingStanding, 2, 3);
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].len(), 6);
        let mats = candidate_feature_matrices(
            &windows,
            smarteryou_sensors::DeviceKind::Smartphone,
            cfg.sample_rate,
        );
        assert_eq!(mats[0].cols(), 18);
    }

    #[test]
    fn sparkline_shapes() {
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(sparkline(&[]).is_empty());
    }
}
