//! # SmarterYou
//!
//! A full reproduction of *“Implicit Smartphone User Authentication with
//! Sensors and Contextual Machine Learning”* (Lee & Lee, DSN 2017) as a Rust
//! workspace. This facade crate re-exports every sub-crate so applications
//! can depend on a single `smarteryou` package.
//!
//! * [`core`] — the authentication pipeline (feature extraction, context
//!   detection, per-context KRR models, retraining).
//! * [`sensors`] — the synthetic smartphone/smartwatch sensor substrate.
//! * [`ml`] — from-scratch classifiers (KRR, SVM, naive Bayes, random
//!   forest, …) and cross-validation.
//! * [`dsp`] — FFT/DFT, spectral peaks, windowing.
//! * [`stats`] — KS test, Fisher score, correlation, FAR/FRR metrics.
//! * [`linalg`] — dense matrices and solvers.
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` for an end-to-end enrollment +
//! continuous-authentication run against the simulated population.

pub use smarteryou_core as core;
pub use smarteryou_dsp as dsp;
pub use smarteryou_linalg as linalg;
pub use smarteryou_ml as ml;
pub use smarteryou_sensors as sensors;
pub use smarteryou_stats as stats;
