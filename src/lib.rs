//! # SmarterYou
//!
//! A full reproduction of *“Implicit Smartphone User Authentication with
//! Sensors and Contextual Machine Learning”* (Lee & Lee, DSN 2017) as a Rust
//! workspace. This facade crate re-exports every sub-crate so applications
//! can depend on a single `smarteryou` package.
//!
//! * [`core`] — the authentication pipeline (feature extraction, context
//!   detection, per-context KRR models, retraining).
//! * [`sensors`] — the synthetic smartphone/smartwatch sensor substrate.
//! * [`ml`] — from-scratch classifiers (KRR, SVM, naive Bayes, random
//!   forest, …) and cross-validation.
//! * [`dsp`] — FFT/DFT, spectral peaks, windowing.
//! * [`stats`] — KS test, Fisher score, correlation, FAR/FRR metrics.
//! * [`linalg`] — dense matrices and solvers.
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` for an end-to-end enrollment +
//! continuous-authentication run against the simulated population.
//!
//! # Batch engine
//!
//! A cloud tier scoring many devices should not call
//! [`SmarterYou::process_window`](core::SmarterYou::process_window) per
//! window. [`FleetEngine`](core::engine::FleetEngine) owns one pipeline per
//! registered user, takes a `(UserId, DualDeviceWindow)` batch per tick,
//! groups each user's windows by detected context and scores them as matrix
//! passes, advancing all users in parallel — with decisions bit-identical
//! to the sequential loop (see `tests/batch_parity.rs`):
//!
//! ```no_run
//! use smarteryou::core::engine::FleetEngine;
//! use smarteryou::sensors::UserId;
//! # fn pipeline_for(_u: usize) -> smarteryou::core::SmarterYou { unimplemented!() }
//! # fn windows_this_tick() -> Vec<(UserId, smarteryou::sensors::DualDeviceWindow)> { vec![] }
//!
//! let mut engine = FleetEngine::new();
//! for u in 0..1_000 {
//!     engine.register(UserId(u), pipeline_for(u)).unwrap();
//! }
//! // Per tick: deliver every device's freshly captured windows at once.
//! let outcomes = engine.score_ticked(windows_this_tick()).unwrap();
//! for (user, outcome) in outcomes {
//!     // react to decisions/locks per user
//!     let _ = (user, outcome);
//! }
//! ```
//!
//! `cargo run --release -p smarteryou-bench --bin fleet` prints the
//! windows/sec baseline at 100 / 1k / 10k simulated users.
//!
//! At fleet scale most users are idle between ticks, so the engine can cap
//! how many pipelines stay resident:
//! [`FleetEngine::with_eviction`](core::engine::FleetEngine::with_eviction)
//! snapshots the least recently submitted pipelines into a pluggable
//! [`SnapshotStore`](core::persist::SnapshotStore) (versioned JSON wire
//! format, see [`core::persist`]) and rehydrates them lazily on submit —
//! with decisions, scores, and retrain events **bit-identical** to a
//! never-evicted engine (`tests/persist_parity.rs`). Ticks cost
//! O(resident), never O(registered), so parked users are free.
//!
//! One engine is one shard:
//! [`ShardedFleet`](core::engine::shard::ShardedFleet) routes users over N
//! engines by a pure `UserId` hash
//! ([`ShardRouter`](core::engine::shard::ShardRouter)), all sharing one
//! epoch-fenced snapshot store — migrating a user between shards is an
//! evict + rehydrate, a stale owner's write is a typed
//! [`StaleEpoch`](core::persist::PersistError::StaleEpoch) rejection, and
//! decisions stay bit-identical across migrations
//! (`tests/shard_parity.rs`; design notes in `docs/sharding.md`).
//!
//! Producers don't need `&mut` fleet access per window:
//! [`ShardedFleet::enable_ingest`](core::engine::shard::ShardedFleet::enable_ingest)
//! puts a bounded MPSC ring in front of every shard and hands back a
//! cloneable [`IngestRouter`](core::engine::ingest::IngestRouter) that any
//! thread can submit through, with typed backpressure
//! ([`BackpressurePolicy`](core::engine::ingest::BackpressurePolicy):
//! reject-with-the-window-back or block-until-space). Each shard's tick
//! drains its own queue; windows queued for migrated users are forwarded
//! to the owning shard, never scored stale, never lost — and decisions
//! stay bit-identical to the synchronous path (`tests/ingest_parity.rs`;
//! design notes in `docs/ingestion.md`).

pub use smarteryou_core as core;
pub use smarteryou_dsp as dsp;
pub use smarteryou_linalg as linalg;
pub use smarteryou_ml as ml;
pub use smarteryou_sensors as sensors;
pub use smarteryou_stats as stats;
