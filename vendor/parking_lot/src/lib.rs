//! Offline stand-in for `parking_lot`.
//!
//! Wraps the std synchronization primitives with `parking_lot`'s
//! non-poisoning API (`lock()` returns the guard directly). Performance
//! characteristics are std's, which is fine for this workspace's coarse
//! "cloud server behind a mutex" usage.

use std::sync::{self, PoisonError};

/// A mutual exclusion primitive (non-poisoning `lock`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock (non-poisoning).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
