//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API the workspace's benches use
//! (`criterion_group!` / `criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with `sample_size` / `bench_with_input`, `BenchmarkId`,
//! `black_box`) as a plain wall-clock harness: each benchmark is warmed up,
//! then timed over a fixed number of samples, and the median per-iteration
//! time is printed. No statistics, plots or baselines — just numbers, so
//! `cargo bench` runs offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a parameterised benchmark (`group/function/param`).
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter` call.
    last_estimate: Duration,
}

impl Bencher {
    /// Times `routine`, first calibrating an iteration count per sample so
    /// each sample takes roughly 10 ms, then recording the median sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: how many iterations fit in ~10 ms?
        let mut iters_per_sample = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(10) || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 2;
        }
        let mut per_iter: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            per_iter.push(start.elapsed() / iters_per_sample as u32);
        }
        per_iter.sort_unstable();
        self.last_estimate = per_iter[per_iter.len() / 2];
    }
}

fn run_one(name: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples,
        last_estimate: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.last_estimate;
    let throughput = if per_iter.as_nanos() > 0 {
        1e9 / per_iter.as_nanos() as f64
    } else {
        f64::INFINITY
    };
    println!("bench: {name:<50} {per_iter:>12.3?}/iter  ({throughput:>14.1} iter/s)");
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Mirrors criterion's CLI hookup; arguments are accepted and ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Overrides the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted and ignored (wall-clock harness has no target time).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Runs one parameterised benchmark within the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
