//! Offline stand-in for the `rand` crate (0.9 API surface).
//!
//! Provides exactly what the workspace uses: a deterministic [`rngs::StdRng`]
//! (xoshiro256++ seeded through SplitMix64 — *not* the real StdRng's ChaCha12,
//! but the workspace never depends on the exact stream, only on seeded
//! determinism), the [`Rng`] extension trait with `random` / `random_range`,
//! [`SeedableRng::seed_from_u64`], and [`seq::SliceRandom::shuffle`].

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from an RNG via [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free-enough bounded integer sampling (Lemire-style widening
/// multiply; the tiny modulo bias is irrelevant for simulation workloads).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end - start) as u64 + 1;
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                start + bounded_u64(rng, span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = end.wrapping_sub(start) as u64 + 1;
                start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_signed_range!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * f64::sample_from(rng)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * f32::sample_from(rng)
    }
}

/// User-facing extension trait (the rand 0.9 method names).
pub trait Rng: RngCore {
    /// Uniform sample of a [`Standard`] type.
    fn random<T: Standard>(&mut self) -> T {
        T::sample_from(self)
    }

    /// Uniform sample from a range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_from(self) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic standard generator: xoshiro256++ with SplitMix64 seeding.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl StdRng {
        /// The generator's internal xoshiro256++ state, for checkpointing.
        ///
        /// Together with [`StdRng::from_state`] this lets a serialized
        /// system resume the exact random stream it was suspended on — the
        /// real `rand` offers the same through its serde feature.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a [`StdRng::state`] checkpoint. The
        /// restored generator continues the stream bit-for-bit.
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{bounded_u64, Rng};

    /// Slice shuffling (the rand 0.9 trait of the same name).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chosen element, `None` for an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = bounded_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[bounded_u64(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn state_checkpoint_resumes_the_stream() {
        let mut a = StdRng::seed_from_u64(99);
        for _ in 0..17 {
            a.random::<u64>();
        }
        let mut b = StdRng::from_state(a.state());
        assert_eq!(a, b);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f: f64 = r.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_sampling_respects_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = r.random_range(3..7usize);
            assert!((3..7).contains(&v));
            let w = r.random_range(0..=4usize);
            assert!(w <= 4);
            let f = r.random_range(-1.0..1.0f64);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "49! permutations; identity is astronomically unlikely"
        );
    }

    #[test]
    fn approximate_uniformity() {
        let mut r = StdRng::seed_from_u64(4);
        let mut buckets = [0usize; 10];
        for _ in 0..100_000 {
            buckets[r.random_range(0..10usize)] += 1;
        }
        for &b in &buckets {
            assert!((9_000..11_000).contains(&b), "bucket {b}");
        }
    }
}
