//! Offline stand-in for the `serde` crate.
//!
//! The real `serde` is unavailable in this build environment, so this crate
//! provides the small subset the workspace actually uses: `Serialize` /
//! `Deserialize` traits (routed through an owned [`Value`] tree instead of
//! serde's visitor machinery) plus derive macros for plain structs, newtype
//! structs and data-carrying enums. `serde_json` in `vendor/serde_json`
//! renders the same [`Value`] tree to and from JSON text, preserving the
//! externally-tagged enum format real serde uses, so snapshots stay
//! interchangeable for the shapes this workspace serializes.

use std::collections::VecDeque;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// An owned, self-describing serialization tree (JSON data model plus
/// distinct signed/unsigned integer variants so `u64` seeds round-trip
/// exactly).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer that does not fit `i64`.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Ordered key/value map (field order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrows the object entries if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Borrows the array elements if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// One-word description of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses a [`Value`] into `Self`.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: i64 = match *v {
                    Value::Int(n) => n,
                    Value::UInt(n) => i64::try_from(n)
                        .map_err(|_| DeError::custom(format!("{n} overflows {}", stringify!($t))))?,
                    Value::Float(f) if f.fract() == 0.0 => f as i64,
                    ref other => {
                        return Err(DeError::custom(format!(
                            "expected integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                match i64::try_from(*self) {
                    Ok(n) => Value::Int(n),
                    Err(_) => Value::UInt(*self as u64),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: u64 = match *v {
                    Value::Int(n) => u64::try_from(n)
                        .map_err(|_| DeError::custom(format!("{n} is negative")))?,
                    Value::UInt(n) => n,
                    Value::Float(f) if f.fract() == 0.0 && f >= 0.0 => f as u64,
                    ref other => {
                        return Err(DeError::custom(format!(
                            "expected unsigned integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match *v {
                    Value::Float(f) => Ok(f as $t),
                    Value::Int(n) => Ok(n as $t),
                    Value::UInt(n) => Ok(n as $t),
                    ref other => Err(DeError::custom(format!(
                        "expected number, found {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for std::time::Duration {
    /// Matches real serde's `{secs, nanos}` representation.
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_string(), self.as_secs().to_value()),
            ("nanos".to_string(), self.subsec_nanos().to_value()),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let secs = __private::get_field(v, "Duration", "secs")?;
        let nanos = __private::get_field(v, "Duration", "nanos")?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

/// A [`Value`] serializes to itself, so callers can parse a document once,
/// inspect parts of the tree (e.g. a version envelope), and then decode the
/// body from the same tree — mirroring `serde_json::Value`'s behaviour.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(()),
            other => Err(DeError::custom(format!(
                "expected null, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::custom(format!("expected array, found {}", v.kind())))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_value(v).map(VecDeque::from)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| DeError::custom(format!("expected array of {N} elements, got {got}")))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = $i; 1 })+;
                let items = v
                    .as_array()
                    .ok_or_else(|| DeError::custom(format!("expected tuple array, found {}", v.kind())))?;
                if items.len() != LEN {
                    return Err(DeError::custom(format!(
                        "expected tuple of {LEN}, got {} elements",
                        items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$i])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Support code referenced by the derive macro expansions. Not public API.
pub mod __private {
    use super::{DeError, Deserialize, Value};

    /// Looks up `field` of struct `ty` in an object value and deserializes it.
    pub fn get_field<T: Deserialize>(v: &Value, ty: &str, field: &str) -> Result<T, DeError> {
        let entry = v
            .get(field)
            .ok_or_else(|| DeError::custom(format!("missing field `{field}` for {ty}")))?;
        T::from_value(entry).map_err(|e| DeError::custom(format!("{ty}.{field}: {e}")))
    }

    /// Extracts the single `(tag, payload)` pair of an externally tagged enum.
    pub fn enum_tag<'v>(v: &'v Value, ty: &str) -> Result<(&'v str, &'v Value), DeError> {
        match v {
            Value::Object(entries) if entries.len() == 1 => {
                Ok((entries[0].0.as_str(), &entries[0].1))
            }
            other => Err(DeError::custom(format!(
                "expected single-key object for enum {ty}, found {}",
                other.kind()
            ))),
        }
    }

    /// Extracts a tuple-variant payload of known arity.
    pub fn tuple_payload<'v>(v: &'v Value, ty: &str, len: usize) -> Result<&'v [Value], DeError> {
        let items = v
            .as_array()
            .ok_or_else(|| DeError::custom(format!("expected array payload for {ty}")))?;
        if items.len() != len {
            return Err(DeError::custom(format!(
                "expected {len} elements for {ty}, got {}",
                items.len()
            )));
        }
        Ok(items)
    }
}
