//! Derive macros for the offline `serde` stand-in.
//!
//! Parses the item's token stream by hand (no `syn`/`quote` available
//! offline) and emits `Serialize` / `Deserialize` impls that route through
//! `serde::Value`. Supported shapes — the only ones this workspace uses:
//!
//! * structs with named fields,
//! * newtype / tuple structs,
//! * unit structs,
//! * enums whose variants are unit, tuple or struct-like (externally
//!   tagged, matching real serde's default representation).
//!
//! Generic types and `#[serde(...)]` attributes are intentionally not
//! supported and produce a compile error naming the offending item.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attrs_and_vis(&tokens, &mut pos);

    let kind = match &tokens[pos] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    pos += 1;
    let name = match &tokens[pos] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected item name, found {other}"),
    };
    pos += 1;
    if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stand-in derive does not support generic type `{name}`");
    }

    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("unsupported struct body for `{name}`: {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("expected enum body for `{name}`, found {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("cannot derive serde impls for `{other}`"),
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            // `#[...]` attribute (doc comments included).
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 2; // the `#` and the bracketed group
            }
            // `pub`, optionally followed by `(crate)` etc.
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *pos += 1;
                if matches!(
                    tokens.get(*pos),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *pos += 1;
                }
            }
            _ => return,
        }
    }
}

/// Parses `field: Type, ...` from a brace group, returning field names.
/// Commas nested in `<...>` angle brackets or any grouped delimiter do not
/// terminate a field.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let field = match &tokens[pos] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected field name, found {other}"),
        };
        pos += 1;
        match &tokens[pos] {
            TokenTree::Punct(p) if p.as_char() == ':' => pos += 1,
            other => panic!("expected `:` after field `{field}`, found {other}"),
        }
        skip_type(&tokens, &mut pos);
        fields.push(field);
    }
    fields
}

/// Advances past one type, stopping after the comma that follows it (or at
/// end of stream). Tracks `<`/`>` depth so `Map<K, V>`-style commas are not
/// mistaken for field separators.
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0usize;
    while *pos < tokens.len() {
        match &tokens[*pos] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1)
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                *pos += 1;
                return;
            }
            _ => {}
        }
        *pos += 1;
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut pos = 0;
    let mut count = 0;
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut pos);
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = match &tokens[pos] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name, found {other}"),
        };
        pos += 1;
        let fields = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an optional `= discriminant` then the trailing comma.
        while pos < tokens.len() {
            if matches!(&tokens[pos], TokenTree::Punct(p) if p.as_char() == ',') {
                pos += 1;
                break;
            }
            pos += 1;
        }
        variants.push((name, fields));
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Named(fields) => named_to_value(fields, "self.", ""),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(variant, fields)| match fields {
                    Fields::Unit => format!(
                        "{name}::{variant} => ::serde::Value::Str(\"{variant}\".to_string()),"
                    ),
                    Fields::Named(fields) => {
                        let binds = fields.join(", ");
                        let obj = named_to_value(fields, "", "*");
                        format!(
                            "{name}::{variant} {{ {binds} }} => ::serde::Value::Object(vec![\
                             (\"{variant}\".to_string(), {obj})]),"
                        )
                    }
                    Fields::Tuple(1) => format!(
                        "{name}::{variant}(f0) => ::serde::Value::Object(vec![\
                         (\"{variant}\".to_string(), ::serde::Serialize::to_value(f0))]),"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        format!(
                            "{name}::{variant}({}) => ::serde::Value::Object(vec![\
                             (\"{variant}\".to_string(), ::serde::Value::Array(vec![{}]))]),",
                            binds.join(", "),
                            items.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

/// `Object(vec![("f", f.to_value()), ...])` over named fields. `prefix` is
/// `self.` for struct impls, empty for bound variant fields; `deref` is `*`
/// when the bindings are references that primitives need dereferenced from.
fn named_to_value(fields: &[String], prefix: &str, _deref: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&{prefix}{f}))"))
        .collect();
    format!("::serde::Value::Object(vec![{}])", entries.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("Ok({name})"),
                Fields::Named(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!("{f}: ::serde::__private::get_field(v, \"{name}\", \"{f}\")?")
                        })
                        .collect();
                    format!("Ok({name} {{ {} }})", inits.join(", "))
                }
                Fields::Tuple(1) => {
                    format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
                }
                Fields::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                        .collect();
                    format!(
                        "let items = ::serde::__private::tuple_payload(v, \"{name}\", {n})?;\n\
                         Ok({name}({}))",
                        inits.join(", ")
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(variant, _)| format!("\"{variant}\" => Ok({name}::{variant}),"))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|(variant, fields)| match fields {
                    Fields::Unit => None,
                    Fields::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::__private::get_field(payload, \"{name}::{variant}\", \"{f}\")?"
                                )
                            })
                            .collect();
                        Some(format!(
                            "\"{variant}\" => Ok({name}::{variant} {{ {} }}),",
                            inits.join(", ")
                        ))
                    }
                    Fields::Tuple(1) => Some(format!(
                        "\"{variant}\" => Ok({name}::{variant}(::serde::Deserialize::from_value(payload)?)),"
                    )),
                    Fields::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        Some(format!(
                            "\"{variant}\" => {{\n\
                                 let items = ::serde::__private::tuple_payload(payload, \"{name}::{variant}\", {n})?;\n\
                                 Ok({name}::{variant}({}))\n\
                             }},",
                            inits.join(", ")
                        ))
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         if let ::serde::Value::Str(tag) = v {{\n\
                             return match tag.as_str() {{\n\
                                 {unit}\n\
                                 other => Err(::serde::DeError::custom(format!(\n\
                                     \"unknown unit variant `{{other}}` for {name}\"))),\n\
                             }};\n\
                         }}\n\
                         let (tag, payload) = ::serde::__private::enum_tag(v, \"{name}\")?;\n\
                         match tag {{\n\
                             {tagged}\n\
                             other => Err(::serde::DeError::custom(format!(\n\
                                 \"unknown variant `{{other}}` for {name}\"))),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit = unit_arms.join("\n"),
                tagged = tagged_arms.join("\n"),
            )
        }
    }
}
