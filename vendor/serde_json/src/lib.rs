//! Offline stand-in for `serde_json`: renders the `serde` stand-in's
//! [`Value`] tree to JSON text and parses it back.
//!
//! Numbers are printed with Rust's shortest round-trip float formatting, so
//! `f64` model parameters survive a serialize → parse cycle bit-exactly —
//! the property the workspace's model-roundtrip tests assert.

use std::fmt;

use serde::{DeError, Deserialize, Serialize, Value};

/// Serialization / deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Never fails for the supported data model; the `Result` mirrors the real
/// `serde_json` signature.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Never fails for the supported data model.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Parses a value from JSON text.
///
/// # Errors
///
/// Returns an [`Error`] for malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(out: &mut String, v: &Value, indent: usize) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_value_pretty(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_string(out, k);
                out.push_str(": ");
                write_value_pretty(out, val, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_value(out, other),
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Shortest round-trip representation (Rust's `{:?}` for `f64`); JSON has no
/// non-finite literals, so those degrade to `null` like real serde_json.
fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        out.push_str(&format!("{f:?}"));
    } else {
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, found {:?} at offset {}",
                        other.map(|b| b as char),
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, found {:?} at offset {}",
                        other.map(|b| b as char),
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(to_string(&u64::MAX).unwrap(), u64::MAX.to_string());
        assert_eq!(from_str::<u64>(&u64::MAX.to_string()).unwrap(), u64::MAX);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for &f in &[0.1, 1.0 / 3.0, f64::MIN_POSITIVE, -2.5e-300, 12345.6789] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(f.to_bits(), back.to_bits(), "{s}");
        }
    }

    #[test]
    fn nested_structures() {
        let v: Vec<Vec<f64>> = vec![vec![1.0, 2.0], vec![]];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1.0,2.0],[]]");
        let back: Vec<Vec<f64>> = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn rejects_malformed() {
        assert!(from_str::<f64>("[1").is_err());
        assert!(from_str::<f64>("1 2").is_err());
        assert!(from_str::<Vec<f64>>("{\"a\":1}").is_err());
    }
}
