//! Offline stand-in for `proptest`.
//!
//! Supports the subset the workspace's property tests use: range strategies
//! over numbers, `prop::collection::vec`, tuple strategies, `prop_map`,
//! `ProptestConfig::with_cases`, and the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` macros. Inputs are drawn from a deterministic seeded
//! RNG (no persistence, no shrinking — a failing case prints its values via
//! the assertion message instead).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic input generator handed to strategies.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Fixed-seed RNG: property tests are reproducible run to run.
    pub fn deterministic() -> Self {
        TestRng {
            inner: StdRng::seed_from_u64(0x5EED_CAFE),
        }
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.random()
    }

    /// Uniform integer in `[0, bound)`.
    pub fn below(&mut self, bound: usize) -> usize {
        self.inner.random_range(0..bound.max(1))
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy producing a constant.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end - self.start) as usize;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() - *self.start()) as usize + 1;
                *self.start() + rng.below(span) as $t
            }
        }
    )*};
}

impl_int_strategy!(usize, u64, u32, i32, i64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident : $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// Size specification for [`vec`]: a fixed length or a range of lengths.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.start + rng.below(self.end - self.start)
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.start() + rng.below(self.end() - self.start() + 1)
        }
    }

    /// Strategy for `Vec`s of `element` values with a [`SizeRange`] length.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `prop::` namespace as re-exported by the prelude.
pub mod prop {
    pub use super::collection;
}

pub mod prelude {
    pub use super::{collection, prop, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Error type carried by `prop_assert!` failures inside the runner closure.
#[derive(Debug)]
pub struct TestCaseError(pub String);

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Declares property tests. Each `arg in strategy` parameter is drawn fresh
/// for every case; the body runs `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic();
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&$strategy, &mut rng);)*
                let result = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                if let Err($crate::TestCaseError(msg)) = result {
                    panic!("proptest case {case} of {} failed: {msg}", config.cases);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(0.0..1.0f64, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn tuples_and_map(pair in (0..10usize, 0.0..2.0f64).prop_map(|(a, b)| a as f64 + b)) {
            prop_assert!((0.0..12.0).contains(&pair));
        }
    }

    #[test]
    #[should_panic(expected = "proptest case 0")]
    fn failures_panic_with_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            #[allow(dead_code)]
            fn inner(x in 0..1usize) {
                prop_assert!(x > 5, "x was {x}");
            }
        }
        inner();
    }
}
