//! End-to-end integration test of the deployed pipeline: enrollment,
//! continuous authentication, theft response, explicit recovery — spanning
//! the sensors, core, ml and stats crates through the public facade.

use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use smarteryou::core::{
    ContextDetector, ContextDetectorConfig, DeviceSet, FeatureExtractor, ProcessOutcome,
    ResponsePolicy, SmarterYou, SystemConfig, SystemPhase, TrainingServer,
};
use smarteryou::sensors::{
    MimicryAttacker, Population, RawContext, TraceGenerator, UserProfile, WindowSpec,
};

struct World {
    cfg: SystemConfig,
    detector: ContextDetector,
    server: Arc<Mutex<TrainingServer>>,
    spec: WindowSpec,
    owner: UserProfile,
    impostor: UserProfile,
}

fn build_world() -> World {
    let population = Population::generate(8, 20260608);
    let cfg = SystemConfig::paper_default()
        .with_window_secs(3.0)
        .with_data_size(80);
    let spec = WindowSpec::from_seconds(cfg.window_secs(), cfg.sample_rate());
    let extractor = FeatureExtractor::paper_default(cfg.sample_rate());

    let mut ctx_features = Vec::new();
    let mut ctx_labels = Vec::new();
    let mut server = TrainingServer::new();
    for user in &population.users()[2..] {
        let mut gen = TraceGenerator::new(user.clone(), 7);
        for raw in [
            RawContext::SittingStanding,
            RawContext::MovingAround,
            RawContext::OnTable,
        ] {
            let windows = gen.generate_windows(raw, spec, 20);
            for w in &windows {
                ctx_features.push(extractor.context_features(w));
                ctx_labels.push(raw.coarse());
            }
            server.contribute(
                raw.coarse(),
                windows
                    .iter()
                    .map(|w| extractor.auth_features(w, DeviceSet::Combined)),
            );
        }
    }
    let mut rng = StdRng::seed_from_u64(5);
    let detector = ContextDetector::train(
        extractor,
        &ctx_features,
        &ctx_labels,
        ContextDetectorConfig::default(),
        &mut rng,
    )
    .expect("detector trains");

    World {
        cfg,
        detector,
        server: Arc::new(Mutex::new(server)),
        spec,
        owner: population.users()[0].clone(),
        impostor: population.users()[1].clone(),
    }
}

fn enroll(system: &mut SmarterYou, owner: &UserProfile, spec: WindowSpec) {
    let mut gen = TraceGenerator::new(owner.clone(), 31);
    let mut s = 0;
    while system.phase() == SystemPhase::Enrollment {
        assert!(s < 300, "enrollment did not converge");
        let ctx = if s % 2 == 0 {
            RawContext::SittingStanding
        } else {
            RawContext::MovingAround
        };
        s += 1;
        for w in gen.generate_windows(ctx, spec, 5) {
            system.process_window(&w).expect("pipeline processes");
        }
    }
}

#[test]
fn owner_keeps_access_impostor_is_locked_out() {
    let world = build_world();
    let mut system = SmarterYou::new(
        world.cfg.clone(),
        world.detector.clone(),
        world.server.clone(),
        1,
    )
    .unwrap()
    .with_response_policy(ResponsePolicy { rejects_to_lock: 2 });
    enroll(&mut system, &world.owner, world.spec);

    // Owner uses the phone across contexts: overwhelmingly accepted.
    let mut gen = TraceGenerator::new(world.owner.clone(), 77);
    let mut accepted = 0;
    let mut total = 0;
    for ctx in [RawContext::SittingStanding, RawContext::MovingAround] {
        for w in gen.generate_windows(ctx, world.spec, 20) {
            if let ProcessOutcome::Decision { decision, .. } = system.process_window(&w).unwrap() {
                total += 1;
                accepted += decision.accepted as usize;
            }
            if system.is_locked() {
                system.unlock_with_explicit_auth();
            }
        }
    }
    let owner_rate = accepted as f64 / total as f64;
    assert!(owner_rate > 0.8, "owner accept rate {owner_rate}");

    // Impostors take the phone: at this reduced scale an individual pair of
    // users can collide, so require most impostors to be locked out fast.
    let population = Population::generate(8, 20260608);
    let mut locked_out = 0;
    for (i, impostor) in population.users()[1..4].iter().enumerate() {
        system.unlock_with_explicit_auth();
        let mut gen = TraceGenerator::new(impostor.clone(), 99 + i as u64);
        gen.begin_session(RawContext::SittingStanding);
        for _ in 0..20 {
            let w = gen.next_window(world.spec);
            system.process_window(&w).unwrap();
            if system.is_locked() {
                locked_out += 1;
                break;
            }
        }
    }
    assert!(
        locked_out >= 2,
        "only {locked_out}/3 impostors were locked out"
    );
}

#[test]
fn mimicry_attacker_survives_briefly_but_is_caught() {
    let world = build_world();
    let mut system = SmarterYou::new(
        world.cfg.clone(),
        world.detector.clone(),
        world.server.clone(),
        2,
    )
    .unwrap();
    enroll(&mut system, &world.owner, world.spec);

    let mut rng = StdRng::seed_from_u64(13);
    let mimic = MimicryAttacker::new(world.impostor.clone(), 0.8);
    let masq = mimic.masquerade_profile(&world.owner, &mut rng);
    let mut gen = TraceGenerator::new(masq, 55);
    gen.begin_session(RawContext::SittingStanding);
    let mut survived = 0;
    for _ in 0..30 {
        let w = gen.next_window(world.spec);
        system.process_window(&w).unwrap();
        if system.is_locked() {
            break;
        }
        survived += 1;
    }
    assert!(
        system.is_locked(),
        "mimicry attacker still had access after 30 windows"
    );
    assert!(survived < 30);
}

#[test]
fn trained_models_serialize_and_roundtrip() {
    let world = build_world();
    let mut system = SmarterYou::new(world.cfg.clone(), world.detector, world.server, 3).unwrap();
    enroll(&mut system, &world.owner, world.spec);

    // The downloaded authenticator is a serde artefact (the paper's "model
    // file" that the phone fetches from the cloud).
    let auth = system.authenticator().expect("trained");
    let json = serde_json::to_string(auth).expect("serializes");
    let back: smarteryou::core::Authenticator = serde_json::from_str(&json).expect("parses");
    assert_eq!(back.num_features(), auth.num_features());
    assert_eq!(back.threshold(), auth.threshold());
}
