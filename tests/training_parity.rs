//! Deferred-retrain parity for the fleet engine's [`TrainingService`]:
//!
//! 1. **Sync apply-at-tick-boundary ≡ inline.** An engine whose pipelines
//!    run [`RetrainMode::Deferred`] against a
//!    [`TrainingService::synchronous`] service must produce **bit-identical**
//!    decisions, scores, and retrain events to inline retraining, fed one
//!    window per user per tick (so the deferred apply lands at the same
//!    boundary the inline fit ran at). Parity must also survive aggressive
//!    eviction churn mid-stream.
//! 2. **Exact retrain accounting.** Every started job ends as exactly one
//!    of completed or canceled:
//!    `Σstarted == Σcompleted + Σcanceled + in_flight`, per report and in
//!    the engine's lifetime totals. Inline-mode engines report all-zero
//!    training counters.
//! 3. **Eviction mid-retrain** (regression): evicting a user whose retrain
//!    job is in flight cancels the job, never applies the late result, and
//!    rehydration restores the captured request so the retrain re-issues
//!    and applies exactly once — with the user's ownership epoch untouched
//!    and the whole interleaving bit-reproducible.
//! 4. **Retrain storms.** Many users resolving retrains against one pinned
//!    negative epoch share a single [`RetrainWorkspaceCache`] workspace
//!    with zero true fit-cache misses, and the shared-workspace results
//!    match the legacy stack-and-fit path to 1e-6; at the engine level, a
//!    worker-pool storm under eviction churn keeps accounting exact and
//!    never applies a stale model.
//!
//! [`RetrainWorkspaceCache`]: smarteryou::core::RetrainWorkspaceCache
//!
//! [`TrainingService`]: smarteryou::core::engine::TrainingService
//! [`TrainingService::synchronous`]:
//!     smarteryou::core::engine::TrainingService::synchronous
//! [`RetrainMode::Deferred`]: smarteryou::core::RetrainMode::Deferred

mod common;

use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use common::{assert_outcomes_identical, build_world as build_common_world, World, WorldSeeds};
use rand::rngs::StdRng;
use rand::SeedableRng;
use smarteryou::core::engine::{FleetEngine, TrainingService};
use smarteryou::core::persist::MemorySnapshotStore;
use smarteryou::core::{
    Authenticator, CoreError, DeviceSet, EnrollmentWorkspace, FeatureExtractor, NegativeEpoch,
    ProcessOutcome, ResponsePolicy, RetrainMode, RetrainPolicy, RetrainWorkspaceCache, SmarterYou,
    SystemConfig, SystemEvent, TrainingHandle,
};
use smarteryou::ml::{KrrFitCache, KrrTailState};
use smarteryou::sensors::{DualDeviceWindow, RawContext, TraceGenerator, UserId};

fn build_world(num_users: usize, window_secs: f64) -> World {
    // Seeds pin this suite's window streams independently of the other
    // parity suites'.
    build_common_world(
        num_users,
        window_secs,
        WorldSeeds {
            population: 91_007,
            pool_gen: 5,
            detector_rng: 11,
        },
    )
}

/// This suite's pipeline: keeps scoring after rejections and retrains
/// eagerly so short runs exercise the deferred-retrain path.
fn pipeline(world: &World, seed: u64, retrain_period: usize, mode: RetrainMode) -> SmarterYou {
    world
        .pipeline_with(
            seed,
            ResponsePolicy {
                rejects_to_lock: usize::MAX,
            },
            Some(RetrainPolicy {
                threshold: 1e9,
                period: retrain_period,
                max_reject_fraction: 1.0,
            }),
        )
        .with_retrain_mode(mode)
}

/// Drives an inline reference engine and a deferred engine (synchronous
/// service, optional eviction churn) through the same one-window-per-tick
/// schedule, asserting bit-identical outcomes and exact counter accounting.
fn run_sync_parity(world: &World, churn_capacity: Option<usize>, auth_windows: usize) {
    let num_users = world.users.len();
    let streams: Vec<Vec<DualDeviceWindow>> = world
        .users
        .iter()
        .enumerate()
        .map(|(u, user)| world.window_stream(user, 9_000 + u as u64, auth_windows))
        .collect();

    let mut inline_engine = FleetEngine::new();
    let mut deferred = FleetEngine::new().with_training(TrainingService::synchronous());
    if let Some(capacity) = churn_capacity {
        deferred.enable_eviction(Box::new(MemorySnapshotStore::new()), capacity);
    }
    for u in 0..num_users {
        inline_engine
            .register(
                UserId(u),
                pipeline(world, u as u64 + 1, 6, RetrainMode::Inline),
            )
            .expect("register");
        deferred
            .register(
                UserId(u),
                pipeline(world, u as u64 + 1, 6, RetrainMode::Deferred),
            )
            .expect("register");
    }
    assert!(deferred.training_enabled());
    assert!(!inline_engine.training_enabled());

    let mut cursors = vec![0usize; num_users];
    let mut inline_outcomes: Vec<Vec<ProcessOutcome>> = vec![Vec::new(); num_users];
    let mut deferred_outcomes: Vec<Vec<ProcessOutcome>> = vec![Vec::new(); num_users];
    let (mut total_started, mut total_evictions) = (0usize, 0usize);
    while cursors.iter().zip(&streams).any(|(&c, s)| c < s.len()) {
        // One window per user per tick: the trigger window is always the
        // last the user scores this tick, so the synchronous apply at this
        // tick's boundary is exactly where inline retraining ran.
        for (u, stream) in streams.iter().enumerate() {
            if cursors[u] < stream.len() {
                let w = stream[cursors[u]].clone();
                cursors[u] += 1;
                inline_engine.submit(UserId(u), w.clone()).expect("submit");
                deferred.submit(UserId(u), w).expect("submit");
            }
        }
        let inline_report = inline_engine.tick();
        let deferred_report = deferred.tick();
        assert!(inline_report.errors().is_empty());
        assert!(deferred_report.errors().is_empty());
        // Inline engines never touch the training counters.
        assert_eq!(inline_report.retrains_started(), 0);
        assert_eq!(inline_report.retrains_completed(), 0);
        assert_eq!(inline_report.retrains_canceled(), 0);
        assert_eq!(inline_report.retrains_in_flight(), 0);
        // Synchronous service: every job started this tick completed at
        // this very boundary; nothing is canceled or left in flight.
        assert_eq!(
            deferred_report.retrains_started(),
            deferred_report.retrains_completed()
        );
        assert_eq!(deferred_report.retrains_canceled(), 0);
        assert_eq!(deferred_report.retrains_in_flight(), 0);
        // Trigger counts line up across modes, and every deferred trigger
        // became exactly one job.
        assert_eq!(deferred_report.retrains(), inline_report.retrains());
        assert_eq!(
            deferred_report.retrains_started(),
            deferred_report.retrains()
        );
        total_started += deferred_report.retrains_started();
        total_evictions += deferred_report.evictions();
        for user in inline_report.users() {
            inline_outcomes[user.user.0].extend(user.outcomes.iter().cloned());
        }
        for user in deferred_report.users() {
            deferred_outcomes[user.user.0].extend(user.outcomes.iter().cloned());
        }
    }

    assert!(total_started > 0, "run never exercised the deferred path");
    if churn_capacity.is_some() {
        assert!(total_evictions > 0, "churn run produced no evictions");
    }
    assert_eq!(
        deferred.retrain_totals(),
        (total_started as u64, total_started as u64, 0)
    );
    assert_eq!(deferred.retrains_in_flight(), 0);
    assert_eq!(inline_engine.retrain_totals(), (0, 0, 0));
    for u in 0..num_users {
        assert_outcomes_identical(
            &inline_outcomes[u],
            &deferred_outcomes[u],
            &format!("user {u}"),
        );
        // The event streams (enrollment, retrains with their trigger-day
        // stamps, locks) must match bit-for-bit too.
        deferred.rehydrate(UserId(u)).expect("rehydrate");
        assert_eq!(
            inline_engine
                .pipeline(UserId(u))
                .expect("resident")
                .events(),
            deferred.pipeline(UserId(u)).expect("resident").events(),
            "user {u} event streams diverge"
        );
    }
}

#[test]
fn deferred_sync_apply_matches_inline_retraining() {
    let world = build_world(4, 2.0);
    run_sync_parity(&world, None, 18);
}

#[test]
fn deferred_sync_parity_survives_eviction_churn() {
    // Capacity 2 over 4 users: most pipelines round-trip through the
    // snapshot store between almost every pair of ticks.
    let world = build_world(4, 2.0);
    run_sync_parity(&world, Some(2), 14);
}

/// A [`TrainingHandle`] whose *retrain* path blocks on a gate until the
/// test opens it — the deterministic way to hold a worker-mode job in
/// flight across tick boundaries. Enrollment training passes straight
/// through.
#[derive(Debug)]
struct GatedHandle {
    inner: Arc<dyn TrainingHandle>,
    open: Mutex<bool>,
    opened: Condvar,
    /// Retrain calls that have entered the gate (blocked or passing).
    entered: Mutex<usize>,
    /// Retrain calls that have finished the delegated fit.
    finished: Mutex<usize>,
}

impl GatedHandle {
    fn new(inner: Arc<dyn TrainingHandle>) -> Self {
        GatedHandle {
            inner,
            open: Mutex::new(false),
            opened: Condvar::new(),
            entered: Mutex::new(0),
            finished: Mutex::new(0),
        }
    }

    fn open_gate(&self) {
        *self.open.lock().expect("gate") = true;
        self.opened.notify_all();
    }

    /// Spins until `counter` reaches at least `target` (the worker thread
    /// advances it) — with a hard timeout so a regression fails instead of
    /// hanging the suite.
    fn await_count(counter: &Mutex<usize>, target: usize) {
        for _ in 0..2_000 {
            if *counter.lock().expect("counter") >= target {
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("gated training call never reached count {target}");
    }
}

impl TrainingHandle for GatedHandle {
    fn train_authenticator(
        &self,
        positives: &[Vec<Vec<f64>>; 2],
        cfg: &SystemConfig,
        rng: &mut StdRng,
    ) -> Result<Authenticator, CoreError> {
        self.inner.train_authenticator(positives, cfg, rng)
    }

    fn train_authenticator_epoch(
        &self,
        positives: &[Vec<Vec<f64>>; 2],
        cfg: &SystemConfig,
        rng: &mut StdRng,
        epoch: &mut Option<NegativeEpoch>,
        caches: &mut [KrrFitCache; 2],
    ) -> Result<Authenticator, CoreError> {
        *self.entered.lock().expect("entered") += 1;
        let mut open = self.open.lock().expect("gate");
        while !*open {
            open = self.opened.wait(open).expect("gate");
        }
        drop(open);
        let result = self
            .inner
            .train_authenticator_epoch(positives, cfg, rng, epoch, caches);
        *self.finished.lock().expect("finished") += 1;
        result
    }

    fn train_authenticator_epoch_shared(
        &self,
        positives: &[Vec<Vec<f64>>; 2],
        cfg: &SystemConfig,
        rng: &mut StdRng,
        epoch: &mut Option<NegativeEpoch>,
        caches: &mut [KrrFitCache; 2],
        tails: &mut [Option<KrrTailState>; 2],
        ws_cache: &RetrainWorkspaceCache,
    ) -> Result<Authenticator, CoreError> {
        // The engine's retrain jobs run through the shared-workspace entry
        // point, so the gate lives here too.
        *self.entered.lock().expect("entered") += 1;
        let mut open = self.open.lock().expect("gate");
        while !*open {
            open = self.opened.wait(open).expect("gate");
        }
        drop(open);
        let result = self
            .inner
            .train_authenticator_epoch_shared(positives, cfg, rng, epoch, caches, tails, ws_cache);
        *self.finished.lock().expect("finished") += 1;
        result
    }

    fn enrollment_workspace(
        &self,
        cfg: &SystemConfig,
        rng: &mut StdRng,
    ) -> Result<EnrollmentWorkspace, CoreError> {
        self.inner.enrollment_workspace(cfg, rng)
    }
}

/// One full eviction-mid-retrain interleaving; returns user 0's outcome
/// stream and final event log so the caller can pin bit-reproducibility.
fn run_eviction_mid_retrain() -> (Vec<ProcessOutcome>, Vec<SystemEvent>) {
    let world = build_world(2, 2.0);
    let gated = Arc::new(GatedHandle::new(world.server.clone()));
    let mut engine = FleetEngine::new()
        .with_eviction(Box::new(MemorySnapshotStore::new()), 1)
        .with_training(TrainingService::with_workers(1));

    // User 0: deferred + eager retrains, behind the gate. User 1 exists to
    // push user 0 out of the single resident slot; it never retrains.
    let user0 = SmarterYou::new(world.cfg.clone(), world.detector.clone(), gated.clone(), 1)
        .expect("valid config")
        .with_response_policy(ResponsePolicy {
            rejects_to_lock: usize::MAX,
        })
        .with_retrain_policy(RetrainPolicy {
            threshold: 1e9,
            period: 4,
            max_reject_fraction: 1.0,
        })
        .with_retrain_mode(RetrainMode::Deferred);
    engine.register(UserId(0), user0).expect("register");
    engine
        .register(
            UserId(1),
            world.pipeline_with(
                2,
                ResponsePolicy {
                    rejects_to_lock: usize::MAX,
                },
                // Never triggers: a trigger needs `0 <= median < threshold`,
                // which no median satisfies at threshold 0.
                Some(RetrainPolicy {
                    threshold: 0.0,
                    period: 30,
                    max_reject_fraction: 1.0,
                }),
            ),
        )
        .expect("register");
    let epoch0 = engine.epoch_of(UserId(0)).expect("registered");

    let streams: Vec<Vec<DualDeviceWindow>> = world
        .users
        .iter()
        .enumerate()
        .map(|(u, user)| world.window_stream(user, 41 + u as u64, 16))
        .collect();
    let mut cursors = vec![0usize; 2];
    let mut outcomes0: Vec<ProcessOutcome> = Vec::new();
    let tick_both = |engine: &mut FleetEngine,
                     cursors: &mut Vec<usize>,
                     users: &[usize],
                     outcomes0: &mut Vec<ProcessOutcome>| {
        for &u in users {
            if cursors[u] < streams[u].len() {
                engine
                    .submit(UserId(u), streams[u][cursors[u]].clone())
                    .expect("submit");
                cursors[u] += 1;
            }
        }
        let report = engine.tick();
        assert!(report.errors().is_empty(), "{:?}", report.errors());
        for user in report.users() {
            if user.user == UserId(0) {
                outcomes0.extend(user.outcomes.iter().cloned());
            }
        }
    };

    // Phase 1: drive user 0 (one window per tick; user 1 idles out of the
    // single resident slot after the first tick) until a deferred retrain
    // triggers. The gate is closed, so the job stays in flight.
    while engine.retrain_totals().0 == 0 {
        assert!(
            cursors[0] < streams[0].len(),
            "stream exhausted before a retrain triggered"
        );
        tick_both(&mut engine, &mut cursors, &[0], &mut outcomes0);
    }
    assert_eq!(engine.retrain_totals(), (1, 0, 0));
    assert_eq!(engine.retrains_in_flight(), 1);
    // Make the interleaving deterministic: wait until the worker is
    // actually *inside* the gated fit before evicting its user.
    GatedHandle::await_count(&gated.entered, 1);

    // Phase 2: user 1 keeps submitting, user 0 idles out of the single
    // resident slot — the eviction must cancel the in-flight job and
    // persist the captured request.
    while engine.is_resident(UserId(0)) == Some(true) {
        tick_both(&mut engine, &mut cursors, &[1], &mut outcomes0);
    }
    assert_eq!(engine.retrain_totals(), (1, 0, 1));
    assert_eq!(engine.retrains_in_flight(), 0);

    // Phase 3: open the gate. The canceled job finishes its fit, loses the
    // commit race by construction, and its result is discarded — no tick
    // may ever count it as completed.
    gated.open_gate();
    GatedHandle::await_count(&gated.finished, 1);
    tick_both(&mut engine, &mut cursors, &[1], &mut outcomes0);
    tick_both(&mut engine, &mut cursors, &[1], &mut outcomes0);
    assert_eq!(engine.retrain_totals(), (1, 0, 1), "stale job was applied");

    // Phase 4: user 0 returns. Rehydration restores the captured request
    // (retrain outstanding), the next tick re-issues it, and — the gate
    // now open — the fit completes and applies at a tick boundary.
    engine.rehydrate(UserId(0)).expect("rehydrate");
    assert!(
        engine
            .pipeline(UserId(0))
            .expect("resident")
            .retrain_outstanding(),
        "snapshot dropped the in-flight retrain"
    );
    tick_both(&mut engine, &mut cursors, &[0], &mut outcomes0);
    assert_eq!(
        engine.retrain_totals().0,
        2,
        "pending request not re-issued"
    );
    for _ in 0..2_000 {
        if engine.retrain_totals().1 == 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
        tick_both(&mut engine, &mut cursors, &[], &mut outcomes0);
    }
    assert_eq!(engine.retrain_totals(), (2, 1, 1));
    assert_eq!(engine.retrains_in_flight(), 0);

    // Phase 5: score a couple more windows on the retrained model — few
    // enough that no *second* retrain can trigger (period 4; one window
    // already scored between rehydration and the apply).
    let stop = (cursors[0] + 2).min(streams[0].len());
    while cursors[0] < stop {
        tick_both(&mut engine, &mut cursors, &[0], &mut outcomes0);
    }

    // The retrain applied exactly once, and ownership never churned.
    engine.rehydrate(UserId(0)).expect("rehydrate");
    let events: Vec<SystemEvent> = engine
        .pipeline(UserId(0))
        .expect("resident")
        .events()
        .to_vec();
    let retrained = events
        .iter()
        .filter(|e| matches!(e, SystemEvent::Retrained { .. }))
        .count();
    assert_eq!(
        retrained, 1,
        "expected exactly one applied retrain: {events:?}"
    );
    assert_eq!(engine.epoch_of(UserId(0)), Some(epoch0));
    (outcomes0, events)
}

#[test]
fn eviction_mid_retrain_cancels_and_never_applies_a_stale_model() {
    let (outcomes_a, events_a) = run_eviction_mid_retrain();
    // The whole interleaving — trigger, cancel, late discard, re-issue,
    // single apply — is bit-reproducible: decisions and event stamps
    // cannot depend on how the canceled worker raced the eviction.
    let (outcomes_b, events_b) = run_eviction_mid_retrain();
    assert_outcomes_identical(&outcomes_a, &outcomes_b, "eviction-mid-retrain reruns");
    assert_eq!(events_a, events_b, "event streams diverge across reruns");
}

/// Retrain storm, handle level: many users resolve retrains against the
/// same pinned negative epoch through one [`RetrainWorkspaceCache`]. The
/// shared-workspace path must agree with the legacy stack-and-fit path to
/// 1e-6 on every probe — both on the cold fit and after a buffer slide —
/// while the storm records **zero true fit-cache misses** and builds the
/// negative-Gram workspace exactly once.
#[test]
fn retrain_storm_shared_workspace_matches_legacy_within_1e6() {
    const NUM_USERS: usize = 6;
    const TRAIN_WINDOWS: usize = 25;
    const SLIDE: usize = 2;
    let world = build_world(NUM_USERS, 2.0);
    let extractor = FeatureExtractor::paper_default(world.cfg.sample_rate());
    let ws_cache = RetrainWorkspaceCache::new();
    let server = world.server.lock();

    // Per-user window features per coarse context: 25 training rows plus 2
    // held back to slide the buffer, and the first 2 doubling as probes.
    let contexts = [RawContext::SittingStanding, RawContext::MovingAround];
    let features: Vec<[Vec<Vec<f64>>; 2]> = world
        .users
        .iter()
        .enumerate()
        .map(|(u, user)| {
            let mut gen = TraceGenerator::new(user.clone(), 77_000 + u as u64);
            let mut per_ctx: [Vec<Vec<f64>>; 2] = [Vec::new(), Vec::new()];
            for raw in contexts {
                per_ctx[raw.coarse().index()] = gen
                    .generate_windows(raw, world.spec, TRAIN_WINDOWS + SLIDE)
                    .iter()
                    .map(|w| extractor.auth_features(w, DeviceSet::Combined))
                    .collect();
            }
            per_ctx
        })
        .collect();

    let mut legacy_state: Vec<_> = Vec::new();
    let mut shared_state: Vec<_> = Vec::new();
    let mut first_epoch: Option<NegativeEpoch> = None;
    for round in 0..2 {
        for (u, feats) in features.iter().enumerate() {
            // Round 0 trains on rows [0, 25); round 1 slides the buffer by
            // two windows per context, to rows [2, 27).
            let lo = round * SLIDE;
            let positives: [Vec<Vec<f64>>; 2] = [
                feats[0][lo..lo + TRAIN_WINDOWS].to_vec(),
                feats[1][lo..lo + TRAIN_WINDOWS].to_vec(),
            ];
            if round == 0 {
                // Identical retrain-RNG seeds pin every user to the same
                // sampled negative epoch — the storm shape that lets one
                // workspace serve the whole fleet.
                legacy_state.push((
                    StdRng::seed_from_u64(33),
                    None::<NegativeEpoch>,
                    [KrrFitCache::default(), KrrFitCache::default()],
                ));
                shared_state.push((
                    StdRng::seed_from_u64(33),
                    None::<NegativeEpoch>,
                    [KrrFitCache::default(), KrrFitCache::default()],
                    [None::<KrrTailState>, None],
                ));
            }
            let (rng_l, epoch_l, caches_l) = &mut legacy_state[u];
            let legacy = server
                .train_authenticator_epoch(&positives, &world.cfg, rng_l, epoch_l, caches_l)
                .expect("legacy fit");
            let (rng_s, epoch_s, caches_s, tails) = &mut shared_state[u];
            let shared = server
                .train_authenticator_epoch_shared(
                    &positives, &world.cfg, rng_s, epoch_s, caches_s, tails, &ws_cache,
                )
                .expect("shared fit");
            assert_eq!(epoch_l, epoch_s, "user {u} round {round}: epochs diverge");
            match &first_epoch {
                None => first_epoch = epoch_s.clone(),
                Some(first) => assert_eq!(
                    first_epoch.as_ref(),
                    Some(first),
                    "user {u}: storm epochs not shared"
                ),
            }
            assert!(
                tails.iter().all(Option::is_some),
                "user {u} round {round}: tail state not retained"
            );

            // Probe with the user's own held-out windows and an impostor's.
            let impostor = &features[(u + 1) % NUM_USERS];
            for (ci, raw) in contexts.iter().enumerate() {
                let ctx = raw.coarse();
                for probe in feats[ci][..SLIDE].iter().chain(&impostor[ci][..SLIDE]) {
                    let cl = legacy.authenticate(ctx, probe).confidence;
                    let cs = shared.authenticate(ctx, probe).confidence;
                    assert!(
                        (cl - cs).abs() < 1e-6,
                        "user {u} round {round} ctx {ctx:?}: legacy {cl} vs shared {cs}"
                    );
                }
            }
        }
    }

    // The whole storm — 6 users × 2 rounds × 2 contexts — ran off one
    // workspace build with zero true (full-cubic-cost) fit-cache misses:
    // round 0 is a shared base fit, round 1 an incremental tail slide.
    assert_eq!(ws_cache.len(), 1, "workspace rebuilt during the storm");
    for (u, (_, _, caches, _)) in shared_state.iter().enumerate() {
        for (ci, cache) in caches.iter().enumerate() {
            assert_eq!(
                (cache.shared_hits(), cache.keyed_hits(), cache.misses()),
                (2, 0, 0),
                "user {u} ctx {ci}: unexpected fit-cache traffic"
            );
        }
    }
}

/// Retrain storm, engine level: many users trigger deferred retrains at
/// the same tick boundaries against a worker-pool service while eviction
/// churn cancels jobs mid-flight. Accounting must stay exact once drained
/// (`started == completed + canceled`, nothing in flight) and every
/// applied retrain corresponds to exactly one completed job — a stale or
/// double-applied result would break the event/counter sum.
#[test]
fn worker_storm_with_eviction_churn_never_applies_stale_models() {
    const NUM_USERS: usize = 6;
    let world = build_world(NUM_USERS, 2.0);
    let mut engine = FleetEngine::new()
        .with_eviction(Box::new(MemorySnapshotStore::new()), 4)
        .with_training(TrainingService::with_workers(2));
    for u in 0..NUM_USERS {
        engine
            .register(
                UserId(u),
                pipeline(&world, u as u64 + 1, 4, RetrainMode::Deferred),
            )
            .expect("register");
    }
    let streams: Vec<Vec<DualDeviceWindow>> = world
        .users
        .iter()
        .enumerate()
        .map(|(u, user)| world.window_stream(user, 9_500 + u as u64, 16))
        .collect();

    let mut cursors = [0usize; NUM_USERS];
    let mut max_started_one_tick = 0usize;
    let mut total_evictions = 0usize;
    while cursors.iter().zip(&streams).any(|(&c, s)| c < s.len()) {
        for (u, stream) in streams.iter().enumerate() {
            if cursors[u] < stream.len() {
                engine
                    .submit(UserId(u), stream[cursors[u]].clone())
                    .expect("submit");
                cursors[u] += 1;
            }
        }
        let report = engine.tick();
        assert!(report.errors().is_empty(), "{:?}", report.errors());
        max_started_one_tick = max_started_one_tick.max(report.retrains_started());
        total_evictions += report.evictions();
    }
    // Drain: keep ticking (no new windows, so no new triggers) until every
    // outstanding job has been applied or canceled.
    for _ in 0..2_000 {
        if engine.retrains_in_flight() == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
        let report = engine.tick();
        assert!(report.errors().is_empty(), "{:?}", report.errors());
    }
    assert_eq!(engine.retrains_in_flight(), 0, "storm never drained");

    let (started, completed, canceled) = engine.retrain_totals();
    assert!(
        started >= NUM_USERS as u64,
        "storm too small: {started} jobs"
    );
    assert!(
        max_started_one_tick >= 2,
        "no tick ever started retrains for multiple users"
    );
    assert!(total_evictions > 0, "churn produced no evictions");
    assert_eq!(started, completed + canceled, "jobs leaked");

    // Count applied retrains across the fleet: exactly one Retrained event
    // per completed job. Canceled jobs (eviction mid-flight) must have
    // left no event behind.
    let mut retrained_events = 0u64;
    for u in 0..NUM_USERS {
        engine.rehydrate(UserId(u)).expect("rehydrate");
        retrained_events += engine
            .pipeline(UserId(u))
            .expect("resident")
            .events()
            .iter()
            .filter(|e| matches!(e, SystemEvent::Retrained { .. }))
            .count() as u64;
    }
    assert_eq!(
        retrained_events, completed,
        "applied retrains diverge from completed jobs"
    );
}
