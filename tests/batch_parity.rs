//! Parity tests for the batched scoring paths: `SmarterYou::process_batch`
//! and the `FleetEngine` must produce **bit-identical** decisions to the
//! sequential `process_window` loop on the same seeded population. This is
//! the contract that lets the fleet engine replace the one-window-at-a-time
//! hot path without changing any authentication outcome.

use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use smarteryou::core::engine::FleetEngine;
use smarteryou::core::{
    ContextDetector, ContextDetectorConfig, DeviceSet, FeatureExtractor, ProcessOutcome,
    ResponsePolicy, SmarterYou, SystemConfig, TrainingServer,
};
use smarteryou::sensors::{
    DualDeviceWindow, Population, RawContext, TraceGenerator, UserId, UserProfile, WindowSpec,
};

struct World {
    cfg: SystemConfig,
    detector: ContextDetector,
    server: Arc<Mutex<TrainingServer>>,
    spec: WindowSpec,
    users: Vec<UserProfile>,
}

fn build_world(num_users: usize) -> World {
    build_world_with_window(num_users, 2.0)
}

fn build_world_with_window(num_users: usize, window_secs: f64) -> World {
    let population = Population::generate(num_users + 4, 77_001);
    let cfg = SystemConfig::paper_default()
        .with_window_secs(window_secs)
        .with_data_size(40);
    let spec = WindowSpec::from_seconds(cfg.window_secs(), cfg.sample_rate());
    let extractor = FeatureExtractor::paper_default(cfg.sample_rate());

    // The last four users provide the anonymized pool and detector data.
    let mut ctx_features = Vec::new();
    let mut ctx_labels = Vec::new();
    let mut server = TrainingServer::new();
    for user in &population.users()[num_users..] {
        let mut gen = TraceGenerator::new(user.clone(), 7);
        for raw in [RawContext::SittingStanding, RawContext::MovingAround] {
            let windows = gen.generate_windows(raw, spec, 25);
            for w in &windows {
                ctx_features.push(extractor.context_features(w));
                ctx_labels.push(raw.coarse());
            }
            server.contribute(
                raw.coarse(),
                windows
                    .iter()
                    .map(|w| extractor.auth_features(w, DeviceSet::Combined)),
            );
        }
    }
    let mut rng = StdRng::seed_from_u64(5);
    let detector = ContextDetector::train(
        extractor,
        &ctx_features,
        &ctx_labels,
        ContextDetectorConfig {
            num_trees: 16,
            max_depth: 8,
        },
        &mut rng,
    )
    .expect("detector trains");

    World {
        cfg,
        detector,
        server: Arc::new(Mutex::new(server)),
        spec,
        users: population.users()[..num_users].to_vec(),
    }
}

impl World {
    fn pipeline(&self, seed: u64) -> SmarterYou {
        SmarterYou::new(
            self.cfg.clone(),
            self.detector.clone(),
            self.server.clone(),
            seed,
        )
        .expect("valid config")
        // Keep scoring after rejections so long impostor-free runs and
        // mixed batches both stay comparable window for window.
        .with_response_policy(ResponsePolicy { rejects_to_lock: 3 })
    }

    /// Enrollment windows followed by a mixed-context authentication run.
    fn window_stream(
        &self,
        user: &UserProfile,
        seed: u64,
        auth_windows: usize,
    ) -> Vec<DualDeviceWindow> {
        let mut gen = TraceGenerator::new(user.clone(), seed);
        let mut windows = Vec::new();
        // Alternate contexts so both enrollment buffers fill (the target is
        // data_size/2 = 20 per context; 26 rounds give 26 per context, with
        // headroom for occasional context misdetections).
        for round in 0..26 {
            let ctx = if round % 2 == 0 {
                RawContext::SittingStanding
            } else {
                RawContext::MovingAround
            };
            windows.extend(gen.generate_windows(ctx, self.spec, 2));
        }
        for round in 0..auth_windows.div_ceil(4) {
            let ctx = if round % 2 == 0 {
                RawContext::MovingAround
            } else {
                RawContext::SittingStanding
            };
            windows.extend(gen.generate_windows(ctx, self.spec, 4));
        }
        windows
    }
}

/// Two outcomes are bit-identical: same variant, same counts, and the
/// decision's confidence matches at the bit level.
fn assert_outcomes_identical(a: &[ProcessOutcome], b: &[ProcessOutcome], label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: outcome counts differ");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        match (x, y) {
            (
                ProcessOutcome::Decision {
                    decision: dx,
                    action: ax,
                    retrained: rx,
                },
                ProcessOutcome::Decision {
                    decision: dy,
                    action: ay,
                    retrained: ry,
                },
            ) => {
                assert_eq!(
                    dx.confidence.to_bits(),
                    dy.confidence.to_bits(),
                    "{label}: window {i} confidence diverges ({} vs {})",
                    dx.confidence,
                    dy.confidence
                );
                assert_eq!(dx.accepted, dy.accepted, "{label}: window {i} verdict");
                assert_eq!(dx.context, dy.context, "{label}: window {i} context");
                assert_eq!(ax, ay, "{label}: window {i} action");
                assert_eq!(rx, ry, "{label}: window {i} retrain flag");
            }
            (x, y) => assert_eq!(x, y, "{label}: window {i}"),
        }
    }
}

#[test]
fn process_batch_matches_sequential_processing() {
    let world = build_world(2);
    for (u, user) in world.users.iter().enumerate() {
        let windows = world.window_stream(user, 900 + u as u64, 24);

        let mut sequential = world.pipeline(u as u64 + 1);
        let seq_outcomes: Vec<ProcessOutcome> = windows
            .iter()
            .map(|w| sequential.process_window(w).expect("sequential"))
            .collect();

        let mut batched = world.pipeline(u as u64 + 1);
        let batch_outcomes = batched.process_batch(&windows).expect("batched");

        assert_outcomes_identical(&seq_outcomes, &batch_outcomes, &format!("user {u}"));
        assert_eq!(sequential.events(), batched.events(), "user {u} events");
        assert_eq!(
            sequential.confidence_tracker().history(),
            batched.confidence_tracker().history(),
            "user {u} tracker history"
        );
    }
}

#[test]
fn process_batch_matches_sequential_at_paper_window() {
    // The deployed 6 s × 50 Hz = 300-sample window is the length that runs
    // the Bluestein real-FFT path; batch and sequential scoring must stay
    // bit-identical through the planned spectral kernels too.
    let world = build_world_with_window(1, 6.0);
    let user = &world.users[0];
    let windows = world.window_stream(user, 4_100, 16);

    let mut sequential = world.pipeline(31);
    let seq_outcomes: Vec<ProcessOutcome> = windows
        .iter()
        .map(|w| sequential.process_window(w).expect("sequential"))
        .collect();

    let mut batched = world.pipeline(31);
    let batch_outcomes = batched.process_batch(&windows).expect("batched");

    assert_outcomes_identical(&seq_outcomes, &batch_outcomes, "paper window");
    assert_eq!(sequential.events(), batched.events(), "paper window events");
}

#[test]
fn fleet_engine_matches_sequential_population() {
    let num_users = 4;
    let world = build_world(num_users);
    let streams: Vec<Vec<DualDeviceWindow>> = world
        .users
        .iter()
        .enumerate()
        .map(|(u, user)| world.window_stream(user, 1_300 + u as u64, 16))
        .collect();

    // Reference: each user's stream through a sequential pipeline.
    let mut reference: Vec<Vec<ProcessOutcome>> = Vec::new();
    for (u, stream) in streams.iter().enumerate() {
        let mut pipeline = world.pipeline(u as u64 + 1);
        reference.push(
            stream
                .iter()
                .map(|w| pipeline.process_window(w).expect("sequential"))
                .collect(),
        );
    }

    // Fleet: same pipelines behind the engine, windows interleaved across
    // users and delivered over several ticks of varying size.
    let mut engine = FleetEngine::new();
    for u in 0..num_users {
        engine
            .register(UserId(u), world.pipeline(u as u64 + 1))
            .expect("register");
    }
    let mut cursors = vec![0usize; num_users];
    let mut fleet: Vec<Vec<ProcessOutcome>> = vec![Vec::new(); num_users];
    let mut round = 0usize;
    while cursors.iter().zip(&streams).any(|(&c, s)| c < s.len()) {
        // Tick size varies: 1, 2, 3 windows per user per tick, cycling.
        let per_user = round % 3 + 1;
        let mut batch = Vec::new();
        for (u, stream) in streams.iter().enumerate() {
            for _ in 0..per_user {
                if cursors[u] < stream.len() {
                    batch.push((UserId(u), stream[cursors[u]].clone()));
                    cursors[u] += 1;
                }
            }
        }
        let outcomes = engine.score_ticked(batch).expect("tick");
        for (id, outcome) in outcomes {
            fleet[id.0].push(outcome);
        }
        round += 1;
    }

    for u in 0..num_users {
        assert_outcomes_identical(&reference[u], &fleet[u], &format!("user {u}"));
    }
}

#[test]
fn tick_report_aggregates_population_counters() {
    let world = build_world(2);
    let mut engine = FleetEngine::new();
    for u in 0..2usize {
        engine
            .register(UserId(u), world.pipeline(u as u64 + 9))
            .expect("register");
    }
    let mut total = 0usize;
    for (u, user) in world.users.iter().enumerate() {
        for w in world.window_stream(user, 2_800 + u as u64, 8) {
            engine.submit(UserId(u), w).expect("submit");
            total += 1;
        }
    }
    assert_eq!(engine.pending(), total);
    let report = engine.tick();
    assert!(
        report.errors().is_empty(),
        "tick errors: {:?}",
        report.errors()
    );
    assert_eq!(engine.pending(), 0);
    assert_eq!(report.windows_scored(), total);
    assert_eq!(
        report.enrolling() + report.accepts() + report.rejections(),
        total
    );
    // Both owners finished enrollment during the tick and were then
    // overwhelmingly accepted on their own data.
    for u in 0..2usize {
        assert!(engine
            .pipeline(UserId(u))
            .unwrap()
            .authenticator()
            .is_some());
    }
    assert!(report.accepts() > report.rejections());
}
