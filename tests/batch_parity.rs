//! Parity tests for the batched scoring paths: `SmarterYou::process_batch`
//! and the `FleetEngine` must produce **bit-identical** decisions to the
//! sequential `process_window` loop on the same seeded population. This is
//! the contract that lets the fleet engine replace the one-window-at-a-time
//! hot path without changing any authentication outcome.

mod common;

use common::{assert_outcomes_identical, build_world as build_common_world, World, WorldSeeds};
use smarteryou::core::engine::FleetEngine;
use smarteryou::core::{ProcessOutcome, ResponsePolicy, SmarterYou};
use smarteryou::sensors::{DualDeviceWindow, UserId};

fn build_world(num_users: usize) -> World {
    build_world_with_window(num_users, 2.0)
}

fn build_world_with_window(num_users: usize, window_secs: f64) -> World {
    // Seeds pin this suite's historical window streams and decisions.
    build_common_world(
        num_users,
        window_secs,
        WorldSeeds {
            population: 77_001,
            pool_gen: 7,
            detector_rng: 5,
        },
    )
}

/// This suite's pipeline: keep scoring after rejections so long
/// impostor-free runs and mixed batches stay comparable window for window.
fn pipeline(world: &World, seed: u64) -> SmarterYou {
    world.pipeline_with(seed, ResponsePolicy { rejects_to_lock: 3 }, None)
}

#[test]
fn process_batch_matches_sequential_processing() {
    let world = build_world(2);
    for (u, user) in world.users.iter().enumerate() {
        let windows = world.window_stream(user, 900 + u as u64, 24);

        let mut sequential = pipeline(&world, u as u64 + 1);
        let seq_outcomes: Vec<ProcessOutcome> = windows
            .iter()
            .map(|w| sequential.process_window(w).expect("sequential"))
            .collect();

        let mut batched = pipeline(&world, u as u64 + 1);
        let batch_outcomes = batched.process_batch(&windows).expect("batched");

        assert_outcomes_identical(&seq_outcomes, &batch_outcomes, &format!("user {u}"));
        assert_eq!(sequential.events(), batched.events(), "user {u} events");
        assert_eq!(
            sequential.confidence_tracker().history(),
            batched.confidence_tracker().history(),
            "user {u} tracker history"
        );
    }
}

#[test]
fn process_batch_matches_sequential_at_paper_window() {
    // The deployed 6 s × 50 Hz = 300-sample window is the length that runs
    // the Bluestein real-FFT path; batch and sequential scoring must stay
    // bit-identical through the planned spectral kernels too.
    let world = build_world_with_window(1, 6.0);
    let user = &world.users[0];
    let windows = world.window_stream(user, 4_100, 16);

    let mut sequential = pipeline(&world, 31);
    let seq_outcomes: Vec<ProcessOutcome> = windows
        .iter()
        .map(|w| sequential.process_window(w).expect("sequential"))
        .collect();

    let mut batched = pipeline(&world, 31);
    let batch_outcomes = batched.process_batch(&windows).expect("batched");

    assert_outcomes_identical(&seq_outcomes, &batch_outcomes, "paper window");
    assert_eq!(sequential.events(), batched.events(), "paper window events");
}

#[test]
fn fleet_engine_matches_sequential_population() {
    let num_users = 4;
    let world = build_world(num_users);
    let streams: Vec<Vec<DualDeviceWindow>> = world
        .users
        .iter()
        .enumerate()
        .map(|(u, user)| world.window_stream(user, 1_300 + u as u64, 16))
        .collect();

    // Reference: each user's stream through a sequential pipeline.
    let mut reference: Vec<Vec<ProcessOutcome>> = Vec::new();
    for (u, stream) in streams.iter().enumerate() {
        let mut sequential = pipeline(&world, u as u64 + 1);
        reference.push(
            stream
                .iter()
                .map(|w| sequential.process_window(w).expect("sequential"))
                .collect(),
        );
    }

    // Fleet: same pipelines behind the engine, windows interleaved across
    // users and delivered over several ticks of varying size.
    let mut engine = FleetEngine::new();
    for u in 0..num_users {
        engine
            .register(UserId(u), pipeline(&world, u as u64 + 1))
            .expect("register");
    }
    let mut cursors = vec![0usize; num_users];
    let mut fleet: Vec<Vec<ProcessOutcome>> = vec![Vec::new(); num_users];
    let mut round = 0usize;
    while cursors.iter().zip(&streams).any(|(&c, s)| c < s.len()) {
        // Tick size varies: 1, 2, 3 windows per user per tick, cycling.
        let per_user = round % 3 + 1;
        let mut batch = Vec::new();
        for (u, stream) in streams.iter().enumerate() {
            for _ in 0..per_user {
                if cursors[u] < stream.len() {
                    batch.push((UserId(u), stream[cursors[u]].clone()));
                    cursors[u] += 1;
                }
            }
        }
        let outcomes = engine.score_ticked(batch).expect("tick");
        for (id, outcome) in outcomes {
            fleet[id.0].push(outcome);
        }
        round += 1;
    }

    for u in 0..num_users {
        assert_outcomes_identical(&reference[u], &fleet[u], &format!("user {u}"));
    }
}

#[test]
fn tick_report_aggregates_population_counters() {
    let world = build_world(2);
    let mut engine = FleetEngine::new();
    for u in 0..2usize {
        engine
            .register(UserId(u), pipeline(&world, u as u64 + 9))
            .expect("register");
    }
    let mut total = 0usize;
    for (u, user) in world.users.iter().enumerate() {
        for w in world.window_stream(user, 2_800 + u as u64, 8) {
            engine.submit(UserId(u), w).expect("submit");
            total += 1;
        }
    }
    assert_eq!(engine.pending(), total);
    let report = engine.tick();
    assert!(
        report.errors().is_empty(),
        "tick errors: {:?}",
        report.errors()
    );
    assert_eq!(engine.pending(), 0);
    assert_eq!(report.windows_scored(), total);
    assert_eq!(
        report.enrolling() + report.accepts() + report.rejections(),
        total
    );
    // Both owners finished enrollment during the tick and were then
    // overwhelmingly accepted on their own data.
    for u in 0..2usize {
        assert!(engine
            .pipeline(UserId(u))
            .unwrap()
            .authenticator()
            .is_some());
    }
    assert!(report.accepts() > report.rejections());
}
