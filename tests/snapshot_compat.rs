//! Forward-compatibility guard for the pipeline snapshot format: a golden
//! version-1 snapshot is committed under `fixtures/`, and this suite fails
//! if the current code can no longer restore it — the CI tripwire that
//! forces any format-affecting change to either stay compatible or bump
//! `SNAPSHOT_VERSION` with an explicit migration.
//!
//! Regenerate the fixture (only when intentionally re-baselining, which
//! requires a version bump if the old fixture no longer restores) with:
//!
//! ```text
//! cargo test --test snapshot_compat regenerate -- --ignored
//! ```

use std::path::PathBuf;
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use smarteryou::core::persist::PipelineSnapshot;
use smarteryou::core::{
    ContextDetector, ContextDetectorConfig, DeviceSet, FeatureExtractor, ResponsePolicy,
    SmarterYou, SystemConfig, TrainingServer, SNAPSHOT_VERSION,
};
use smarteryou::sensors::{Population, RawContext, TraceGenerator, UsageContext, WindowSpec};

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn snapshot_path() -> PathBuf {
    fixture_dir().join("pipeline_v1.snapshot.json")
}

fn expected_path() -> PathBuf {
    fixture_dir().join("pipeline_v1.expected.json")
}

/// Behaviour pinned alongside the golden snapshot. The probe is a fixed
/// synthetic feature vector scored through pure arithmetic (no
/// platform-dependent transcendentals), so the confidence bits are stable
/// across machines.
#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct GoldenExpectation {
    snapshot_version: u32,
    enrolled: bool,
    num_features: usize,
    events: usize,
    probe_confidence_bits: u64,
    probe_accepted: bool,
}

/// Deterministic probe of `width` features in a plausible scaled range.
fn probe_vector(width: usize) -> Vec<f64> {
    (0..width)
        .map(|i| ((i * 37 + 11) % 23) as f64 * 0.25 - 2.5)
        .collect()
}

fn expectation_for(
    snapshot: &PipelineSnapshot,
    server: Arc<Mutex<TrainingServer>>,
) -> GoldenExpectation {
    let pipeline = SmarterYou::restore(snapshot.clone(), server).expect("golden snapshot restores");
    let auth = pipeline
        .authenticator()
        .expect("golden snapshot is enrolled");
    let probe = probe_vector(auth.num_features());
    let decision = auth.authenticate(UsageContext::Stationary, &probe);
    GoldenExpectation {
        snapshot_version: snapshot.version(),
        enrolled: snapshot.is_enrolled(),
        num_features: auth.num_features(),
        events: pipeline.events().len(),
        probe_confidence_bits: decision.confidence.to_bits(),
        probe_accepted: decision.accepted,
    }
}

/// Builds the deterministic enrolled pipeline the golden fixture captures.
fn build_golden_pipeline() -> SmarterYou {
    let cfg = SystemConfig::paper_default()
        .with_window_secs(2.0)
        .with_data_size(40);
    let spec = WindowSpec::from_seconds(cfg.window_secs(), cfg.sample_rate());
    let population = Population::generate(5, 424_242);
    let extractor = FeatureExtractor::paper_default(cfg.sample_rate());

    let mut ctx_features = Vec::new();
    let mut ctx_labels = Vec::new();
    let mut server = TrainingServer::new();
    for user in &population.users()[1..] {
        let mut gen = TraceGenerator::new(user.clone(), 17);
        for raw in [RawContext::SittingStanding, RawContext::MovingAround] {
            let windows = gen.generate_windows(raw, spec, 20);
            for w in &windows {
                ctx_features.push(extractor.context_features(w));
                ctx_labels.push(raw.coarse());
            }
            server.contribute(
                raw.coarse(),
                windows
                    .iter()
                    .map(|w| extractor.auth_features(w, DeviceSet::Combined)),
            );
        }
    }
    let mut rng = StdRng::seed_from_u64(13);
    let detector = ContextDetector::train(
        extractor,
        &ctx_features,
        &ctx_labels,
        ContextDetectorConfig {
            num_trees: 8,
            max_depth: 6,
        },
        &mut rng,
    )
    .expect("detector trains");

    let mut sys = SmarterYou::new(cfg, detector, Arc::new(Mutex::new(server)), 7)
        .expect("valid config")
        .with_response_policy(ResponsePolicy {
            rejects_to_lock: usize::MAX,
        });
    let owner = population.users()[0].clone();
    let mut gen = TraceGenerator::new(owner, 29);
    let mut guard = 0;
    while sys.authenticator().is_none() && guard < 500 {
        guard += 1;
        let ctx = if guard % 2 == 0 {
            RawContext::SittingStanding
        } else {
            RawContext::MovingAround
        };
        for w in gen.generate_windows(ctx, spec, 5) {
            sys.process_window(&w).expect("process");
        }
    }
    assert!(sys.authenticator().is_some(), "enrollment stuck");
    // A few authenticated windows so the tracker and retrain buffers carry
    // non-trivial state into the fixture.
    for w in gen.generate_windows(RawContext::SittingStanding, spec, 6) {
        sys.process_window(&w).expect("process");
    }
    sys
}

#[test]
fn restores_committed_golden_snapshot() {
    let json = std::fs::read_to_string(snapshot_path()).expect(
        "fixtures/pipeline_v1.snapshot.json missing — run \
         `cargo test --test snapshot_compat regenerate -- --ignored`",
    );
    let snapshot = PipelineSnapshot::from_json(&json)
        .expect("current code must keep restoring the committed v1 snapshot");
    assert_eq!(snapshot.version(), SNAPSHOT_VERSION);

    let expected: GoldenExpectation = serde_json::from_str(
        &std::fs::read_to_string(expected_path()).expect("expected-values fixture missing"),
    )
    .expect("expected-values fixture parses");
    let got = expectation_for(&snapshot, Arc::new(Mutex::new(TrainingServer::new())));
    assert_eq!(
        got, expected,
        "restored snapshot behaviour diverged from the committed baseline"
    );

    // The wire form re-serializes losslessly: parse(serialize(parse(x)))
    // is identical to parse(x).
    let again = PipelineSnapshot::from_json(&snapshot.to_json()).expect("reserialize");
    assert_eq!(again, snapshot);
}

#[test]
#[ignore = "regenerates the committed golden fixture; run explicitly when re-baselining"]
fn regenerate() {
    let pipeline = build_golden_pipeline();
    let snapshot = pipeline.snapshot();
    std::fs::create_dir_all(fixture_dir()).expect("fixtures dir");
    std::fs::write(snapshot_path(), snapshot.to_json()).expect("write snapshot fixture");
    let expected = expectation_for(&snapshot, Arc::new(Mutex::new(TrainingServer::new())));
    std::fs::write(
        expected_path(),
        serde_json::to_string_pretty(&expected).expect("expectation serializes"),
    )
    .expect("write expectation fixture");
    println!(
        "wrote {} and {}",
        snapshot_path().display(),
        expected_path().display()
    );
}
