//! Evict/restore parity for the fleet engine: an engine that aggressively
//! evicts idle pipelines to a snapshot store and rehydrates them on submit
//! must produce **bit-identical** decisions, scores, and retrain events to
//! an eviction-disabled engine fed the same windows — the persistence
//! counterpart of `tests/batch_parity.rs`. Also pins the typed error split
//! between "unknown user" and "known user whose snapshot failed to load".

mod common;

use common::{assert_outcomes_identical, build_world as build_common_world, World, WorldSeeds};
use smarteryou::core::engine::FleetEngine;
use smarteryou::core::persist::{FileSnapshotStore, MemorySnapshotStore, PersistError};
use smarteryou::core::{CoreError, ProcessOutcome, ResponsePolicy, RetrainPolicy, SmarterYou};
use smarteryou::sensors::{DualDeviceWindow, UserId};

fn build_world(num_users: usize, window_secs: f64) -> World {
    // Seeds pin this suite's window streams independently of batch_parity's.
    build_common_world(
        num_users,
        window_secs,
        WorldSeeds {
            population: 55_001,
            pool_gen: 3,
            detector_rng: 9,
        },
    )
}

/// This suite's pipeline: keeps scoring after rejections and retrains
/// eagerly (every `retrain_period` accepted windows), so parity runs
/// exercise the retrain path — including the RNG draws whose state must
/// survive eviction.
fn pipeline(world: &World, seed: u64, retrain_period: usize) -> SmarterYou {
    world.pipeline_with(
        seed,
        ResponsePolicy {
            rejects_to_lock: usize::MAX,
        },
        Some(RetrainPolicy {
            threshold: 1e9,
            period: retrain_period,
            max_reject_fraction: 1.0,
        }),
    )
}

/// Runs the same interleaved tick schedule through a reference engine
/// (no eviction) and a churn engine (aggressive eviction), asserting
/// bit-identical outcomes per user plus real eviction/rehydration traffic.
fn run_parity(world: &World, capacity: usize, auth_windows: usize, retrain_period: usize) {
    let num_users = world.users.len();
    let streams: Vec<Vec<DualDeviceWindow>> = world
        .users
        .iter()
        .enumerate()
        .map(|(u, user)| world.window_stream(user, 7_000 + u as u64, auth_windows))
        .collect();

    let mut reference = FleetEngine::new();
    let mut churn =
        FleetEngine::new().with_eviction(Box::new(MemorySnapshotStore::new()), capacity);
    for u in 0..num_users {
        reference
            .register(UserId(u), pipeline(world, u as u64 + 1, retrain_period))
            .expect("register");
        churn
            .register(UserId(u), pipeline(world, u as u64 + 1, retrain_period))
            .expect("register");
    }

    let mut cursors = vec![0usize; num_users];
    let mut ref_outcomes: Vec<Vec<ProcessOutcome>> = vec![Vec::new(); num_users];
    let mut churn_outcomes: Vec<Vec<ProcessOutcome>> = vec![Vec::new(); num_users];
    let mut round = 0usize;
    let (mut total_evictions, mut total_rehydrations, mut total_retrains) =
        (0usize, 0usize, 0usize);
    while cursors.iter().zip(&streams).any(|(&c, s)| c < s.len()) {
        // Vary both the tick size and which users participate, so some
        // pipelines sit idle for several ticks and age out of the LRU.
        let per_user = round % 3 + 1;
        let mut batch = Vec::new();
        for (u, stream) in streams.iter().enumerate() {
            if !round.is_multiple_of(u % 3 + 1) {
                continue; // user u skips this tick
            }
            for _ in 0..per_user {
                if cursors[u] < stream.len() {
                    batch.push((UserId(u), stream[cursors[u]].clone()));
                    cursors[u] += 1;
                }
            }
        }
        for (id, w) in &batch {
            reference.submit(*id, w.clone()).expect("reference submit");
            churn.submit(*id, w.clone()).expect("churn submit");
        }
        let ref_report = reference.tick();
        let churn_report = churn.tick();
        assert!(ref_report.errors().is_empty(), "{:?}", ref_report.errors());
        assert!(
            churn_report.errors().is_empty(),
            "{:?}",
            churn_report.errors()
        );
        assert_eq!(ref_report.evictions(), 0);
        assert!(
            churn_report.resident_pipelines() <= capacity,
            "eviction pass left {} resident (capacity {capacity})",
            churn_report.resident_pipelines()
        );
        total_evictions += churn_report.evictions();
        total_rehydrations += churn_report.rehydrations();
        total_retrains += churn_report.retrains();
        assert_eq!(churn_report.retrains(), ref_report.retrains());
        // Inline-mode pipelines never touch the training service: the
        // deferred-retrain counters must stay exactly zero through churn.
        for report in [&ref_report, &churn_report] {
            assert_eq!(report.retrains_started(), 0);
            assert_eq!(report.retrains_completed(), 0);
            assert_eq!(report.retrains_canceled(), 0);
            assert_eq!(report.retrains_in_flight(), 0);
        }
        for user in ref_report.users() {
            ref_outcomes[user.user.0].extend(user.outcomes.iter().cloned());
        }
        for user in churn_report.users() {
            churn_outcomes[user.user.0].extend(user.outcomes.iter().cloned());
        }
        round += 1;
    }

    assert!(
        total_evictions > 0 && total_rehydrations > 0,
        "parity run produced no churn (evictions {total_evictions}, \
         rehydrations {total_rehydrations})"
    );
    assert!(
        total_retrains > 0,
        "parity run never exercised the retrain path"
    );
    let (evictions, rehydrations) = churn.eviction_totals();
    assert_eq!(evictions as usize, total_evictions);
    assert_eq!(rehydrations as usize, total_rehydrations);
    for u in 0..num_users {
        assert_outcomes_identical(&ref_outcomes[u], &churn_outcomes[u], &format!("user {u}"));
    }
}

#[test]
fn evicting_engine_matches_eviction_disabled_engine() {
    // Many users, capacity 2: every tick evicts most of the fleet, so a
    // typical pipeline round-trips through the store several times.
    let world = build_world(6, 2.0);
    run_parity(&world, 2, 20, 6);
}

#[test]
fn eviction_parity_holds_at_the_paper_window() {
    // The deployed 6 s × 50 Hz = 300-sample window: parity must survive the
    // Bluestein real-FFT plan being dropped and rebuilt on rehydration.
    let world = build_world(2, 6.0);
    run_parity(&world, 1, 12, 5);
}

#[test]
fn file_backed_store_round_trips_pipelines() {
    let world = build_world(2, 2.0);
    static UNIQ: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "smarteryou-parity-{}-{}",
        std::process::id(),
        UNIQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    let store = FileSnapshotStore::new(&dir).expect("store dir");
    let mut engine = FleetEngine::new().with_eviction(Box::new(store), 1);
    for u in 0..2usize {
        engine
            .register(UserId(u), pipeline(&world, u as u64 + 1, 6))
            .expect("register");
    }
    // Drive both users through enrollment into auth, forcing churn through
    // the on-disk store every tick.
    let streams: Vec<Vec<DualDeviceWindow>> = world
        .users
        .iter()
        .enumerate()
        .map(|(u, user)| world.window_stream(user, 31 + u as u64, 8))
        .collect();
    for chunk in 0..15 {
        for (u, stream) in streams.iter().enumerate() {
            let lo = (chunk * 4).min(stream.len());
            let hi = ((chunk + 1) * 4).min(stream.len());
            engine
                .submit_many(UserId(u), stream[lo..hi].iter().cloned())
                .expect("submit");
        }
        let report = engine.tick();
        assert!(report.errors().is_empty(), "{:?}", report.errors());
        assert!(report.resident_pipelines() <= 1);
    }
    let (evictions, rehydrations) = engine.eviction_totals();
    assert!(evictions > 0 && rehydrations > 0);
    // Both users finished enrollment even though at most one was ever
    // resident at a time.
    for u in 0..2usize {
        engine.rehydrate(UserId(u)).expect("rehydrate");
        assert!(engine
            .pipeline(UserId(u))
            .expect("resident")
            .authenticator()
            .is_some());
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
#[should_panic(expected = "rehydrate them first")]
fn replacing_the_store_with_evicted_users_is_rejected() {
    // Swapping in a new snapshot store while users are parked in the old
    // one would strand their trained state — the engine must refuse.
    let world = build_world(2, 2.0);
    let mut engine = FleetEngine::new().with_eviction(Box::new(MemorySnapshotStore::new()), 1);
    for u in 0..2usize {
        engine
            .register(UserId(u), pipeline(&world, u as u64 + 1, 6))
            .expect("register");
    }
    let window = world.window_stream(&world.users[0], 13, 0)[0].clone();
    engine.submit(UserId(1), window).expect("submit");
    let report = engine.tick();
    assert_eq!(report.evictions(), 1);
    assert!(report.eviction_errors().is_empty());
    engine.enable_eviction(Box::new(MemorySnapshotStore::new()), 8);
}

#[test]
fn unknown_user_and_failed_rehydration_are_distinct_errors() {
    let world = build_world(1, 2.0);
    let mut engine = FleetEngine::new().with_eviction(Box::new(MemorySnapshotStore::new()), 1);
    engine
        .register(UserId(0), pipeline(&world, 1, 6))
        .expect("register");
    let window = world.window_stream(&world.users[0], 77, 0)[0].clone();

    // Unregistered user: typed UnknownUser, from every submission path.
    assert_eq!(
        engine.submit(UserId(9), window.clone()),
        Err(CoreError::UnknownUser(UserId(9)))
    );
    assert_eq!(
        engine
            .score_ticked(vec![(UserId(9), window.clone())])
            .unwrap_err(),
        CoreError::UnknownUser(UserId(9))
    );

    // Registering a second user and ticking evicts the idle one (capacity
    // 1). Purging its snapshot makes the next submit a *persistence*
    // failure — a known user whose state is gone, not an unknown user.
    engine
        .register(UserId(1), pipeline(&world, 2, 6))
        .expect("register");
    engine.submit(UserId(1), window.clone()).expect("submit");
    let report = engine.tick();
    assert_eq!(report.evictions(), 1);
    assert_eq!(engine.is_resident(UserId(0)), Some(false));
    engine
        .snapshot_store_mut()
        .expect("eviction enabled")
        .remove(UserId(0))
        .expect("purge");
    assert_eq!(
        engine.submit(UserId(0), window),
        Err(CoreError::Persist(PersistError::MissingSnapshot(UserId(0))))
    );
}
