//! Kill-point crash-recovery matrix: a simulated fleet node (a child OS
//! process of this test binary) adopts a user from a shared
//! [`FileSnapshotStore`] directory, checkpoints after every window, and is
//! killed — by an abort-mode [`FaultPlan`] — at each labeled point of the
//! save/acquire/migrate protocols in turn. For every kill point, the
//! survivor (this process) must recover the directory to a consistent
//! snapshot+epoch pair, adopt the user through the epoch CAS, and replay
//! the remaining windows such that the **full decision stream (child
//! prefix + survivor suffix) is bit-identical to an uncrashed run**.
//!
//! The child dies by `abort()` — no unwinding, no destructors — so every
//! scenario also exercises the survivor's lock stealing and journal
//! resolution exactly as a `kill -9` or power loss would.

mod common;

use std::collections::BTreeMap;
use std::io::Read;
use std::process::{Command, Stdio};
use std::sync::Arc;

use common::{assert_outcomes_identical, build_world, World, WorldSeeds};
use smarteryou::core::fault::{points, FaultPlan, CRASH_POINT_ENV};
use smarteryou::core::persist::{
    FileSnapshotStore, JournalResolution, PersistError, SnapshotStore,
};
use smarteryou::core::{ProcessOutcome, ResponsePolicy, RetrainPolicy, SmarterYou};
use smarteryou::sensors::{DualDeviceWindow, UserId};

/// Directory the child's store lives in.
const DIR_ENV: &str = "SY_CRASH_DIR";
/// How many authentication windows the child attempts.
const WINDOWS_ENV: &str = "SY_CRASH_WINDOWS";
/// After this many windows the child performs its "release" (final fenced
/// save already done) and fires the migrate-level kill point.
const MIGRATE_AT_ENV: &str = "SY_CRASH_MIGRATE_AT";

const USER: UserId = UserId(0);
/// Auth windows in every run (two of `window_stream`'s 4-window bursts).
const TOTAL_WINDOWS: usize = 8;
/// Window index after which the migrate-level point fires.
const MIGRATE_AT: usize = 4;

fn crash_world() -> World {
    // Seeds pin this suite's window streams independently of the other
    // parity suites'. One device owner; window_secs 2.0 keeps the per-child
    // world build cheap.
    build_world(
        1,
        2.0,
        WorldSeeds {
            population: 47_001,
            pool_gen: 13,
            detector_rng: 29,
        },
    )
}

/// The deterministic windows both processes derive independently:
/// enrollment prefix + `TOTAL_WINDOWS` auth windows.
fn full_stream(world: &World) -> Vec<DualDeviceWindow> {
    world.window_stream(&world.users[0], 71_000, TOTAL_WINDOWS)
}

/// The suite's pipeline: keeps scoring after rejections and retrains every
/// 5 windows, so checkpoints carry mid-retrain tracker and RNG state — the
/// state the journal protocol must keep consistent.
fn crash_pipeline(world: &World, seed: u64) -> SmarterYou {
    world.pipeline_with(
        seed,
        ResponsePolicy {
            rejects_to_lock: usize::MAX,
        },
        Some(RetrainPolicy {
            threshold: 1e9,
            period: 5,
            max_reject_fraction: 1.0,
        }),
    )
}

/// Feeds the enrollment prefix, returning the enrolled pipeline and the
/// remaining auth windows.
fn enrolled_pipeline(world: &World) -> (SmarterYou, Vec<DualDeviceWindow>) {
    let stream = full_stream(world);
    let auth_start = stream.len() - TOTAL_WINDOWS;
    let mut pipeline = crash_pipeline(world, 51);
    for window in &stream[..auth_start] {
        pipeline.process_window(window).expect("enrollment window");
    }
    assert!(
        pipeline.snapshot().is_enrolled(),
        "fixture must finish enrollment before the crash scenarios start"
    );
    (pipeline, stream[auth_start..].to_vec())
}

/// Stable textual encoding of an outcome for the child → parent ack
/// channel; confidence travels as raw bits so the comparison is exact.
fn encode_outcome(out: &ProcessOutcome) -> String {
    match out {
        ProcessOutcome::Decision {
            decision,
            action,
            retrained,
        } => format!(
            "D:{:016x}:{}:{:?}:{:?}:{}",
            decision.confidence.to_bits(),
            decision.accepted,
            decision.context,
            action,
            retrained
        ),
        ProcessOutcome::Enrolling { stationary, moving } => format!("E:{stationary}:{moving}"),
    }
}

/// The crashing node. A no-op under a normal test run; when spawned by the
/// matrix with [`CRASH_POINT_ENV`] set it adopts the seeded user through
/// the epoch CAS, processes windows with a fenced checkpoint after each —
/// acking `decision i ...` / `saved i` over stdout — and is killed by its
/// armed [`FaultPlan`] at the scenario's labeled point.
#[test]
fn child_crash_node() {
    let Ok(dir) = std::env::var(DIR_ENV) else {
        return;
    };
    let plan = FaultPlan::from_env().expect("child runs with a crash point armed");
    let windows: usize = std::env::var(WINDOWS_ENV).unwrap().parse().unwrap();
    let migrate_at: usize = std::env::var(MIGRATE_AT_ENV).unwrap().parse().unwrap();

    let world = crash_world();
    let stream = full_stream(&world);
    let auth = &stream[stream.len() - windows..];

    let mut store =
        FileSnapshotStore::with_fault_plan(&dir, Arc::clone(&plan)).expect("child opens store");
    let observed = store.epoch(USER).expect("read epoch");
    let held = store
        .acquire_cas(USER, observed)
        .expect("child adoption CAS");
    let snapshot = store
        .load(USER)
        .expect("child loads seed")
        .expect("seed snapshot present");
    let mut pipeline = SmarterYou::restore(snapshot, world.server.clone()).expect("child restores");

    for (i, window) in auth.iter().enumerate() {
        let outcome = pipeline.process_window(window).expect("child window");
        println!("decision {i} {}", encode_outcome(&outcome));
        store
            .save_fenced(USER, held, &pipeline.snapshot())
            .expect("child checkpoint");
        println!("saved {i}");
        if i + 1 == migrate_at {
            // The checkpoint above doubles as the release's final fenced
            // save; a migration driver hands off ownership here.
            plan.hit(points::MIGRATE_AFTER_RELEASE);
            println!("released");
        }
    }
    println!("done");
}

struct ChildRun {
    /// `i → encoded outcome` acked by the child before dying.
    decisions: BTreeMap<usize, String>,
    /// Highest window index the child acked as saved.
    last_saved: Option<usize>,
    exited_cleanly: bool,
}

fn spawn_crashing_child(dir: &std::path::Path, point_spec: &str) -> ChildRun {
    let exe = std::env::current_exe().expect("test binary path");
    let mut child = Command::new(exe)
        .args(["child_crash_node", "--exact", "--nocapture"])
        .env(DIR_ENV, dir)
        .env(CRASH_POINT_ENV, point_spec)
        .env(WINDOWS_ENV, TOTAL_WINDOWS.to_string())
        .env(MIGRATE_AT_ENV, MIGRATE_AT.to_string())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn crashing node");
    let mut stdout = String::new();
    child
        .stdout
        .take()
        .unwrap()
        .read_to_string(&mut stdout)
        .expect("read child stdout");
    let status = child.wait().expect("child exit status");

    let mut decisions = BTreeMap::new();
    let mut last_saved = None;
    let mut done = false;
    for line in stdout.lines() {
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("decision") => {
                let i: usize = parts.next().unwrap().parse().unwrap();
                decisions.insert(i, parts.next().unwrap().to_string());
            }
            Some("saved") => last_saved = Some(parts.next().unwrap().parse().unwrap()),
            Some("done") => done = true,
            _ => {}
        }
    }
    ChildRun {
        decisions,
        last_saved,
        exited_cleanly: status.success() && done,
    }
}

/// One matrix row: where the child dies and what debris the survivor must
/// find.
struct KillPoint {
    /// `label` or `label@n` for [`CRASH_POINT_ENV`].
    spec: &'static str,
    /// Whether the child dies holding the per-user lock (the survivor must
    /// steal it).
    leaves_lock: bool,
    /// Journal resolution the survivor's recovery must report, if any.
    resolution: Option<fn(&JournalResolution) -> bool>,
}

#[test]
fn kill_point_matrix_survivor_replay_is_bit_identical() {
    let world = crash_world();
    let (enrolled, auth_windows) = enrolled_pipeline(&world);
    assert_eq!(auth_windows.len(), TOTAL_WINDOWS);

    // The uncrashed run every scenario must be bit-identical to.
    let mut reference = enrolled.clone();
    let baseline: Vec<ProcessOutcome> = auth_windows
        .iter()
        .map(|w| reference.process_window(w).expect("baseline window"))
        .collect();

    let matrix: Vec<KillPoint> = vec![
        // The third save is mid-stream: two windows checkpointed, the
        // third decision made but its checkpoint interrupted.
        KillPoint {
            spec: "save.enter@3",
            leaves_lock: false,
            resolution: None,
        },
        KillPoint {
            spec: "save.intent@3",
            leaves_lock: true,
            resolution: Some(|r| matches!(r, JournalResolution::SaveRolledBack { .. })),
        },
        KillPoint {
            spec: "save.data@3",
            leaves_lock: true,
            resolution: Some(|r| matches!(r, JournalResolution::SaveCommitted { .. })),
        },
        KillPoint {
            spec: "save.commit@3",
            leaves_lock: true,
            resolution: Some(|r| matches!(r, JournalResolution::SaveCommitted { .. })),
        },
        // Adoption-time kills: the child dies claiming ownership, before
        // any window.
        KillPoint {
            spec: "acquire.enter",
            leaves_lock: false,
            resolution: None,
        },
        KillPoint {
            spec: "acquire.intent",
            leaves_lock: true,
            resolution: Some(|r| matches!(r, JournalResolution::AcquireRolledBack { .. })),
        },
        KillPoint {
            spec: "acquire.epoch",
            leaves_lock: true,
            resolution: Some(|r| matches!(r, JournalResolution::AcquireCommitted { .. })),
        },
        KillPoint {
            spec: "acquire.commit",
            leaves_lock: true,
            resolution: Some(|r| matches!(r, JournalResolution::AcquireCommitted { .. })),
        },
        // Mid-migration kill: the source finished its release (final
        // fenced save durable) and died before the target claimed.
        KillPoint {
            spec: "migrate.after-release",
            leaves_lock: false,
            resolution: None,
        },
    ];

    for point in &matrix {
        let dir = std::env::temp_dir().join(format!(
            "smarteryou-crash-{}-{}",
            std::process::id(),
            point.spec.replace(['.', '@'], "-")
        ));
        std::fs::remove_dir_all(&dir).ok();
        // Seed the shared directory with the enrolled pipeline at epoch 0
        // — the parked user the crashing node adopts.
        {
            let mut seed_store = FileSnapshotStore::new(&dir).expect("seed store");
            seed_store
                .save(USER, &enrolled.snapshot())
                .expect("seed save");
        }

        let run = spawn_crashing_child(&dir, point.spec);
        assert!(
            !run.exited_cleanly,
            "{}: the armed fault must kill the child",
            point.spec
        );

        // ── Survivor ────────────────────────────────────────────────────
        // Opening the directory performs recovery: orphan sweep, stale
        // lock reaping, journal resolution.
        let mut store = FileSnapshotStore::new(&dir).expect("survivor opens store");
        let report = store.recovery_report().clone();
        assert_eq!(
            report.stale_locks,
            usize::from(point.leaves_lock),
            "{}: stale-lock expectation (report: {report:?})",
            point.spec
        );
        match point.resolution {
            Some(matches_expected) => {
                assert_eq!(
                    report.journals.len(),
                    1,
                    "{}: expected one resolved journal (report: {report:?})",
                    point.spec
                );
                let (stem, resolution) = &report.journals[0];
                assert_eq!(stem, &USER.to_string(), "{}", point.spec);
                assert!(
                    matches_expected(resolution),
                    "{}: unexpected resolution {resolution:?}",
                    point.spec
                );
            }
            None => assert!(
                report.journals.is_empty(),
                "{}: no journal expected (report: {report:?})",
                point.spec
            ),
        }

        // Replay point: everything the child durably checkpointed is kept;
        // a save the journal proves committed counts even though its ack
        // never arrived. (The ack stream stands in for the ingest layer's
        // knowledge of which windows were handed to the dead node.)
        let acked = run.last_saved.map_or(0, |s| s + 1);
        let committed_in_flight = report
            .journals
            .iter()
            .any(|(_, r)| matches!(r, JournalResolution::SaveCommitted { .. }));
        let resume_from = if committed_in_flight {
            run.decisions
                .keys()
                .max()
                .map_or(acked, |d| (d + 1).max(acked))
        } else {
            acked
        };

        // Every decision the child made — acked or dying-breath — must
        // already match the uncrashed run bit for bit.
        for (i, encoded) in &run.decisions {
            assert_eq!(
                encoded,
                &encode_outcome(&baseline[*i]),
                "{}: child window {i} diverges from baseline",
                point.spec
            );
        }

        // Adopt through the CAS (the epoch is whatever the crash left —
        // 0 if the child never claimed, its claim if it did), rehydrate,
        // and finish the stream.
        let observed = store.epoch(USER).expect("survivor reads epoch");
        let adopted = store
            .acquire_cas(USER, observed)
            .expect("survivor adoption CAS");
        assert_eq!(adopted, observed + 1);
        let snapshot = store
            .load(USER)
            .expect("survivor load")
            .expect("snapshot survives every crash point");
        let mut pipeline =
            SmarterYou::restore(snapshot, world.server.clone()).expect("survivor restores");
        let survivor_outcomes: Vec<ProcessOutcome> = auth_windows[resume_from..]
            .iter()
            .map(|w| pipeline.process_window(w).expect("survivor window"))
            .collect();
        assert_outcomes_identical(
            &survivor_outcomes,
            &baseline[resume_from..],
            &format!("survivor after {}", point.spec),
        );

        // And any pre-adoption epoch stays fenced out: a zombie holding
        // the dead node's (or any older) claim cannot fork the pipeline.
        {
            let mut zombie = FileSnapshotStore::new(&dir).expect("zombie handle");
            assert!(
                matches!(
                    zombie.save_fenced(USER, adopted - 1, &enrolled.snapshot()),
                    Err(PersistError::StaleEpoch { .. })
                ),
                "{}: pre-adoption epochs must be fenced out",
                point.spec
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
