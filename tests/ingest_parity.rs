//! Parity stress suite for the async ingestion front-end: a 4-shard
//! [`ShardedFleet`] fed exclusively through bounded [`IngestRouter`]
//! queues — under steady load, rejection-retry bursts, forced mid-ingest
//! migrations and capacity-1 eviction churn — must produce **bit-identical**
//! decisions, scores, and retrain events to a single eviction-disabled
//! [`FleetEngine`] fed the same windows synchronously, at the paper's
//! deployed 6 s × 50 Hz = 300-sample window. Also pins the drain-side
//! contracts: lazy rehydration on drain, typed unknown-user errors, the
//! `Reject` policy handing windows back intact, and `BlockingWait`
//! producers losing nothing across real threads.

mod common;

use common::{assert_outcomes_identical, build_world as build_common_world, World, WorldSeeds};
use smarteryou::core::engine::{BackpressurePolicy, FleetEngine, IngestRouter, ShardedFleet};
use smarteryou::core::persist::MemorySnapshotStore;
use smarteryou::core::{
    CoreError, IngestError, ProcessOutcome, ResponsePolicy, RetrainPolicy, SmarterYou, TickReport,
};
use smarteryou::sensors::{DualDeviceWindow, UserId};

fn build_world(num_users: usize, window_secs: f64) -> World {
    // Seeds pin this suite's window streams independently of the other
    // parity suites'.
    build_common_world(
        num_users,
        window_secs,
        WorldSeeds {
            population: 47_011,
            pool_gen: 17,
            detector_rng: 29,
        },
    )
}

/// This suite's pipeline: keeps scoring after rejections and retrains
/// eagerly, so parity runs exercise the retrain path through the async
/// ingest machinery too.
fn pipeline(world: &World, seed: u64, retrain_period: usize) -> SmarterYou {
    world.pipeline_with(
        seed,
        ResponsePolicy {
            rejects_to_lock: usize::MAX,
        },
        Some(RetrainPolicy {
            threshold: 1e9,
            period: retrain_period,
            max_reject_fraction: 1.0,
        }),
    )
}

/// Collects one fleet tick's outcomes (and aggregate counters) into the
/// per-user streams, asserting the tick was clean.
struct FleetCollector {
    outcomes: Vec<Vec<ProcessOutcome>>,
    retrains: usize,
    forwarded: usize,
    ingested: usize,
}

impl FleetCollector {
    fn new(num_users: usize) -> Self {
        FleetCollector {
            outcomes: vec![Vec::new(); num_users],
            retrains: 0,
            forwarded: 0,
            ingested: 0,
        }
    }

    fn collect(&mut self, reports: Vec<TickReport>) {
        for report in reports {
            assert!(report.errors().is_empty(), "{:?}", report.errors());
            assert!(
                report.eviction_errors().is_empty(),
                "{:?}",
                report.eviction_errors()
            );
            assert!(
                report.ingest_errors().is_empty(),
                "{:?}",
                report.ingest_errors()
            );
            assert!(
                report.misrouted().is_empty(),
                "fleet ticks must consume misroutes"
            );
            self.retrains += report.retrains();
            self.forwarded += report.ingest_forwarded();
            self.ingested += report.ingested();
            for user in report.users() {
                self.outcomes[user.user.0].extend(user.outcomes.iter().cloned());
            }
        }
    }
}

/// Windows still owed to the fleet: undrained queue backlog plus windows
/// already delivered into shard inboxes/stashes.
fn fleet_backlog(fleet: &ShardedFleet, router: &IngestRouter) -> usize {
    router.backlog()
        + (0..fleet.num_shards())
            .map(|s| fleet.shard(s).pending())
            .sum::<usize>()
}

/// The headline invariant: a 4-shard fleet fed *only* through bounded
/// async ingest queues — steady single-window rounds, bursty rounds that
/// overflow the queues and retry on `QueueFull`, adversarial migration
/// churn every round (including mid-ingest, with windows still sitting in
/// the home shard's queue), and capacity-1 eviction — is bit-identical to
/// one eviction-disabled engine fed the same windows synchronously, at the
/// paper's 300-sample window.
#[test]
fn async_ingest_with_churn_and_migrations_matches_sequential_engine() {
    let num_users = 6;
    let num_shards = 4;
    let world = build_world(num_users, 6.0);
    let streams: Vec<Vec<DualDeviceWindow>> = world
        .users
        .iter()
        .enumerate()
        .map(|(u, user)| world.window_stream(user, 17_000 + u as u64, 12))
        .collect();

    let mut reference = FleetEngine::new();
    // Capacity 1 per shard: every tick forces snapshot round-trips through
    // the shared store on top of the queue and migration churn.
    let mut fleet = ShardedFleet::new(num_shards, Box::new(MemorySnapshotStore::new()), 1);
    for u in 0..num_users {
        reference
            .register(UserId(u), pipeline(&world, u as u64 + 1, 5))
            .expect("register");
        fleet
            .register(UserId(u), pipeline(&world, u as u64 + 1, 5))
            .expect("register");
    }
    // Queues deliberately smaller than a burst round's worst case, so the
    // Reject policy actually fires and the retry path is exercised.
    let router = fleet.enable_ingest(4, BackpressurePolicy::Reject);
    assert_eq!(router.num_shards(), num_shards);

    let mut cursors = vec![0usize; num_users];
    let mut collector = FleetCollector::new(num_users);
    let mut ref_outcomes: Vec<Vec<ProcessOutcome>> = vec![Vec::new(); num_users];
    let mut ref_retrains = 0usize;
    let mut rejections = 0usize;
    let mut round = 0usize;
    while cursors.iter().zip(&streams).any(|(&c, s)| c < s.len()) {
        // Adversarial churn: migrate a user off their current shard every
        // round — mid-enrollment, mid-retrain-window, wherever the
        // schedule lands. Their home-shard queue keeps receiving windows,
        // which must now take the misroute-forward path.
        let user = UserId(round % num_users);
        let target = (fleet.shard_of(user).expect("registered") + 1) % num_shards;
        fleet.migrate(user, target).expect("migrate");
        assert_eq!(fleet.shard_of(user), Some(target));

        // Steady rounds feed one window per user; every fourth round
        // bursts three, overflowing the capacity-4 shard queues.
        let per_user = if round % 4 == 3 { 3 } else { 1 };
        for (u, stream) in streams.iter().enumerate() {
            if !round.is_multiple_of(u % 3 + 1) {
                continue; // user u idles this round (ages out of shard LRUs)
            }
            for _ in 0..per_user {
                if cursors[u] >= stream.len() {
                    continue;
                }
                let w = stream[cursors[u]].clone();
                cursors[u] += 1;
                reference.submit(UserId(u), w.clone()).expect("submit");
                // Async submission with rejection-retry: a full queue
                // hands the window back; ticking drains the queues, then
                // the same window goes in again. Nothing is lost.
                let mut attempt = w;
                loop {
                    match router.submit(UserId(u), attempt) {
                        Ok(()) => break,
                        Err(rejected) => {
                            assert_eq!(rejected.error, IngestError::QueueFull { capacity: 4 });
                            assert_eq!(rejected.user, UserId(u));
                            rejections += 1;
                            collector.collect(fleet.tick());
                            attempt = rejected.window;
                        }
                    }
                }
            }
        }
        // Every third round, migrate a user *after* their windows were
        // enqueued: the stale home shard drains them, reports them
        // misrouted, and the fleet forwards them to the new owner.
        if round % 3 == 2 {
            let user = UserId((round / 3) % num_users);
            let target = (fleet.shard_of(user).expect("registered") + 2) % num_shards;
            fleet.migrate(user, target).expect("mid-ingest migrate");
        }
        collector.collect(fleet.tick());
        let ref_report = reference.tick();
        assert!(ref_report.errors().is_empty(), "{:?}", ref_report.errors());
        ref_retrains += ref_report.retrains();
        for user in ref_report.users() {
            ref_outcomes[user.user.0].extend(user.outcomes.iter().cloned());
        }
        round += 1;
    }
    // Flush: forwarded windows score one tick after their drain, so tick
    // until neither the queues nor the shard inboxes owe anything.
    let mut flush_ticks = 0;
    while fleet_backlog(&fleet, &router) > 0 {
        collector.collect(fleet.tick());
        flush_ticks += 1;
        assert!(flush_ticks < 64, "fleet never drained its backlog");
    }

    // The schedule exercised every stress axis it promised.
    assert!(
        fleet.migrations() as usize >= num_users,
        "every user must migrate at least once (got {})",
        fleet.migrations()
    );
    assert!(rejections > 0, "burst rounds never overflowed a queue");
    assert!(
        collector.forwarded > 0,
        "mid-ingest migrations never exercised the misroute-forward path"
    );
    let churn: u64 = (0..num_shards)
        .map(|s| fleet.shard(s).eviction_totals().0)
        .sum();
    assert!(churn > 0, "parity run produced no eviction churn");
    assert!(
        ref_retrains > 0,
        "parity run never exercised the retrain path"
    );
    assert_eq!(ref_retrains, collector.retrains);
    // Exact delivery accounting: every window either drained on its home
    // shard (`ingested`) or was forwarded to a migrated owner — and every
    // single one was scored exactly once.
    let total_windows: usize = streams.iter().map(Vec::len).sum();
    assert_eq!(collector.ingested + collector.forwarded, total_windows);
    let scored: usize = collector.outcomes.iter().map(Vec::len).sum();
    assert_eq!(
        scored, total_windows,
        "async path lost or duplicated windows"
    );
    for (u, reference) in ref_outcomes.iter().enumerate() {
        assert_outcomes_identical(reference, &collector.outcomes[u], &format!("user {u}"));
    }
}

/// `BlockingWait` across real producer threads: one thread per user pushes
/// that user's whole stream into deliberately tiny queues while the main
/// thread ticks the fleet. Every window must arrive (none lost, none
/// duplicated) and the outcome streams must stay bit-identical to the
/// synchronous reference — whatever the cross-thread interleaving.
#[test]
fn blocking_wait_producer_threads_lose_nothing_and_stay_bit_identical() {
    let num_users = 4;
    let num_shards = 4;
    let world = build_world(num_users, 2.0);
    let streams: Vec<Vec<DualDeviceWindow>> = world
        .users
        .iter()
        .enumerate()
        .map(|(u, user)| world.window_stream(user, 23_000 + u as u64, 8))
        .collect();
    let total_windows: usize = streams.iter().map(Vec::len).sum();

    let mut reference = FleetEngine::new();
    let mut fleet = ShardedFleet::new(num_shards, Box::new(MemorySnapshotStore::new()), 1);
    for u in 0..num_users {
        reference
            .register(UserId(u), pipeline(&world, u as u64 + 9, 6))
            .expect("register");
        fleet
            .register(UserId(u), pipeline(&world, u as u64 + 9, 6))
            .expect("register");
    }
    let router = fleet.enable_ingest(2, BackpressurePolicy::BlockingWait);

    // Reference: the same windows, fed synchronously one per tick.
    let mut ref_outcomes: Vec<Vec<ProcessOutcome>> = vec![Vec::new(); num_users];
    let longest = streams.iter().map(Vec::len).max().unwrap();
    for i in 0..longest {
        for (u, stream) in streams.iter().enumerate() {
            if let Some(w) = stream.get(i) {
                reference.submit(UserId(u), w.clone()).expect("submit");
            }
        }
        let report = reference.tick();
        assert!(report.errors().is_empty());
        for user in report.users() {
            ref_outcomes[user.user.0].extend(user.outcomes.iter().cloned());
        }
    }

    // Fleet: producer threads blocking-push while the main thread ticks.
    let mut collector = FleetCollector::new(num_users);
    std::thread::scope(|s| {
        for (u, stream) in streams.iter().enumerate() {
            let router = router.clone();
            let stream = stream.clone();
            s.spawn(move || {
                for w in stream {
                    router
                        .submit(UserId(u), w)
                        .expect("BlockingWait producers park, they never fail");
                }
            });
        }
        let mut scored = 0usize;
        while scored < total_windows {
            collector.collect(fleet.tick());
            scored = collector.outcomes.iter().map(Vec::len).sum();
        }
    });

    let scored: usize = collector.outcomes.iter().map(Vec::len).sum();
    assert_eq!(
        scored, total_windows,
        "BlockingWait lost or duplicated windows"
    );
    for (u, reference) in ref_outcomes.iter().enumerate() {
        assert_outcomes_identical(reference, &collector.outcomes[u], &format!("user {u}"));
    }
}

/// Engine-level drain contract: a parked user's pipeline rehydrates lazily
/// when the drain delivers their window — counted in the tick report — and
/// the drained windows score on that same tick.
#[test]
fn drain_rehydrates_parked_users_lazily() {
    let world = build_world(2, 2.0);
    let streams: Vec<Vec<DualDeviceWindow>> = world
        .users
        .iter()
        .enumerate()
        .map(|(u, user)| world.window_stream(user, 31_000 + u as u64, 0))
        .collect();

    let mut engine = FleetEngine::new().with_eviction(Box::new(MemorySnapshotStore::new()), 1);
    for u in 0..2 {
        engine
            .register(UserId(u), pipeline(&world, u as u64 + 40, 6))
            .expect("register");
    }
    let queue = engine.enable_ingest(8, BackpressurePolicy::Reject);
    assert!(engine.ingest_queue().is_some());

    // Park user 0: only user 1 submits, capacity-1 LRU evicts user 0.
    engine
        .submit(UserId(1), streams[1][0].clone())
        .expect("submit");
    let report = engine.tick();
    assert_eq!(report.evictions(), 1);
    assert_eq!(engine.is_resident(UserId(0)), Some(false));
    assert_eq!(report.ingested(), 0);

    // Async windows for the parked user: the drain must rehydrate and
    // score them on this very tick.
    for w in &streams[0][..3] {
        queue.push((UserId(0), w.clone())).expect("queue has space");
    }
    assert_eq!(queue.len(), 3);
    let report = engine.tick();
    assert_eq!(report.ingested(), 3);
    assert_eq!(report.rehydrations(), 1);
    assert!(report.ingest_errors().is_empty());
    assert!(report.misrouted().is_empty());
    assert_eq!(report.windows_scored(), 3);
    assert_eq!(report.users().len(), 1);
    assert_eq!(report.users()[0].user, UserId(0));
    assert_eq!(engine.is_resident(UserId(0)), Some(true));
    assert!(queue.is_empty());
}

/// A window for a user nobody registered is the one drop path — and it is
/// typed, never silent: the standalone engine reports it as misrouted (the
/// window handed back in the report), the sharded fleet converts it to a
/// [`CoreError::UnknownUser`] ingest error.
#[test]
fn unknown_user_windows_surface_as_typed_errors() {
    let world = build_world(1, 2.0);
    let w = world.window_stream(&world.users[0], 41_000, 0)[0].clone();

    // Standalone engine: the misrouted window comes back in the report.
    let mut engine = FleetEngine::new();
    let queue = engine.enable_ingest(4, BackpressurePolicy::Reject);
    queue.push((UserId(77), w.clone())).expect("space");
    let report = engine.tick();
    assert_eq!(report.ingested(), 0);
    assert_eq!(report.misrouted(), &[(UserId(77), w.clone())]);

    // Sharded fleet: no shard owns the user, so the fleet reports the
    // typed error instead of silently dropping the window.
    let mut fleet = ShardedFleet::new(2, Box::new(MemorySnapshotStore::new()), 1);
    fleet
        .register(UserId(0), pipeline(&world, 3, 6))
        .expect("register");
    let router = fleet.enable_ingest(4, BackpressurePolicy::Reject);
    router.submit(UserId(77), w).expect("queue accepts");
    let reports = fleet.tick();
    let errors: Vec<_> = reports.iter().flat_map(TickReport::ingest_errors).collect();
    assert_eq!(
        errors,
        vec![&(UserId(77), CoreError::UnknownUser(UserId(77)))]
    );
    assert!(reports.iter().all(|r| r.misrouted().is_empty()));
}

/// The `Reject` policy's contract end to end: the refused window comes
/// back byte-identical, tagged with the home shard and the typed reason,
/// and resubmitting it after a drain succeeds.
#[test]
fn reject_hands_the_window_back_intact() {
    let world = build_world(1, 2.0);
    let stream = world.window_stream(&world.users[0], 43_000, 0);
    let id = UserId(0);

    let mut fleet = ShardedFleet::new(2, Box::new(MemorySnapshotStore::new()), 1);
    fleet
        .register(id, pipeline(&world, 5, 6))
        .expect("register");
    let router = fleet.enable_ingest(1, BackpressurePolicy::Reject);

    router.submit(id, stream[0].clone()).expect("first fits");
    let rejected = router
        .submit(id, stream[1].clone())
        .expect_err("queue of 1 is full");
    assert_eq!(rejected.user, id);
    assert_eq!(rejected.shard, router.shard_of(id));
    assert_eq!(rejected.error, IngestError::QueueFull { capacity: 1 });
    assert_eq!(rejected.window, stream[1]);
    assert_eq!(router.queue_len(router.shard_of(id)), 1);

    let reports = fleet.tick();
    assert_eq!(reports.iter().map(TickReport::ingested).sum::<usize>(), 1);
    router
        .submit(id, rejected.window)
        .expect("rejected window resubmits after the drain");
}
