//! Shared fixture for the parity integration suites (`batch_parity`,
//! `persist_parity`): a seeded population split into device owners and a
//! reserve that trains the user-agnostic context detector and fills the
//! anonymized negative pool. Seeds are parameters so each suite keeps its
//! historical, bit-pinned window streams.
//!
//! (`snapshot_compat` deliberately does **not** use this fixture: its
//! golden pipeline must stay byte-stable against unrelated fixture
//! changes, so it builds its own.)

#![allow(dead_code)] // each test binary uses a subset of this module

use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use smarteryou::core::{
    ContextDetector, ContextDetectorConfig, DeviceSet, FeatureExtractor, ProcessOutcome,
    ResponsePolicy, RetrainPolicy, SmarterYou, SystemConfig, TrainingServer,
};
use smarteryou::sensors::{
    DualDeviceWindow, Population, RawContext, TraceGenerator, UserProfile, WindowSpec,
};

/// Seeds that pin a suite's generated population and detector.
pub struct WorldSeeds {
    /// `Population::generate` seed.
    pub population: u64,
    /// Trace-generator seed for the reserve users' pool/detector windows.
    pub pool_gen: u64,
    /// RNG seed for the detector's forest training.
    pub detector_rng: u64,
}

pub struct World {
    pub cfg: SystemConfig,
    pub detector: ContextDetector,
    pub server: Arc<Mutex<TrainingServer>>,
    pub spec: WindowSpec,
    pub users: Vec<UserProfile>,
}

/// Builds a world of `num_users` device owners plus four reserve users
/// whose windows train the context detector and fill the server's
/// anonymized negative pool.
pub fn build_world(num_users: usize, window_secs: f64, seeds: WorldSeeds) -> World {
    let population = Population::generate(num_users + 4, seeds.population);
    let cfg = SystemConfig::paper_default()
        .with_window_secs(window_secs)
        .with_data_size(40);
    let spec = WindowSpec::from_seconds(cfg.window_secs(), cfg.sample_rate());
    let extractor = FeatureExtractor::paper_default(cfg.sample_rate());

    let mut ctx_features = Vec::new();
    let mut ctx_labels = Vec::new();
    let mut server = TrainingServer::new();
    for user in &population.users()[num_users..] {
        let mut gen = TraceGenerator::new(user.clone(), seeds.pool_gen);
        for raw in [RawContext::SittingStanding, RawContext::MovingAround] {
            let windows = gen.generate_windows(raw, spec, 25);
            for w in &windows {
                ctx_features.push(extractor.context_features(w));
                ctx_labels.push(raw.coarse());
            }
            server.contribute(
                raw.coarse(),
                windows
                    .iter()
                    .map(|w| extractor.auth_features(w, DeviceSet::Combined)),
            );
        }
    }
    let mut rng = StdRng::seed_from_u64(seeds.detector_rng);
    let detector = ContextDetector::train(
        extractor,
        &ctx_features,
        &ctx_labels,
        ContextDetectorConfig {
            num_trees: 16,
            max_depth: 8,
        },
        &mut rng,
    )
    .expect("detector trains");

    World {
        cfg,
        detector,
        server: Arc::new(Mutex::new(server)),
        spec,
        users: population.users()[..num_users].to_vec(),
    }
}

impl World {
    /// A pipeline wired to this world's detector and server, with the
    /// suite's response policy and (optionally) a non-default retrain
    /// policy.
    pub fn pipeline_with(
        &self,
        seed: u64,
        response: ResponsePolicy,
        retrain: Option<RetrainPolicy>,
    ) -> SmarterYou {
        let pipeline = SmarterYou::new(
            self.cfg.clone(),
            self.detector.clone(),
            self.server.clone(),
            seed,
        )
        .expect("valid config")
        .with_response_policy(response);
        match retrain {
            Some(policy) => pipeline.with_retrain_policy(policy),
            None => pipeline,
        }
    }

    /// Enrollment windows followed by a mixed-context authentication run:
    /// 26 alternating two-window enrollment rounds (the data_size/2 = 20
    /// per-context target plus headroom for context misdetections), then
    /// `auth_windows` in alternating four-window bursts.
    pub fn window_stream(
        &self,
        user: &UserProfile,
        seed: u64,
        auth_windows: usize,
    ) -> Vec<DualDeviceWindow> {
        let mut gen = TraceGenerator::new(user.clone(), seed);
        let mut windows = Vec::new();
        for round in 0..26 {
            let ctx = if round % 2 == 0 {
                RawContext::SittingStanding
            } else {
                RawContext::MovingAround
            };
            windows.extend(gen.generate_windows(ctx, self.spec, 2));
        }
        for round in 0..auth_windows.div_ceil(4) {
            let ctx = if round % 2 == 0 {
                RawContext::MovingAround
            } else {
                RawContext::SittingStanding
            };
            windows.extend(gen.generate_windows(ctx, self.spec, 4));
        }
        windows
    }
}

/// Two outcome streams are bit-identical: same variants, same counts, and
/// every decision's confidence matches at the bit level.
pub fn assert_outcomes_identical(a: &[ProcessOutcome], b: &[ProcessOutcome], label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: outcome counts differ");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        match (x, y) {
            (
                ProcessOutcome::Decision {
                    decision: dx,
                    action: ax,
                    retrained: rx,
                },
                ProcessOutcome::Decision {
                    decision: dy,
                    action: ay,
                    retrained: ry,
                },
            ) => {
                assert_eq!(
                    dx.confidence.to_bits(),
                    dy.confidence.to_bits(),
                    "{label}: window {i} confidence diverges ({} vs {})",
                    dx.confidence,
                    dy.confidence
                );
                assert_eq!(dx.accepted, dy.accepted, "{label}: window {i} verdict");
                assert_eq!(dx.context, dy.context, "{label}: window {i} context");
                assert_eq!(ax, ay, "{label}: window {i} action");
                assert_eq!(rx, ry, "{label}: window {i} retrain flag");
            }
            (x, y) => assert_eq!(x, y, "{label}: window {i}"),
        }
    }
}
