//! Integration tests asserting the *shape* of the paper's headline results
//! at a reduced scale (see DESIGN.md "Calibration targets"). These span all
//! crates: simulator → features → ML → experiment harness.

use smarteryou::core::experiment::{
    collect_population_features, evaluate_authentication, ExperimentConfig,
};
use smarteryou::core::{ContextMode, DeviceSet};
use smarteryou::ml::Algorithm;

/// Shared reduced-scale config: large enough for the orderings to be
/// stable, small enough for CI.
fn shape_cfg() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper_default();
    cfg.num_users = 14;
    cfg.windows_per_context = 160;
    cfg.data_size = 240;
    cfg.window_secs = 4.0;
    cfg.repeats = 1;
    cfg
}

#[test]
fn table7_ordering_holds() {
    let cfg = shape_cfg();
    let data = collect_population_features(&cfg);
    let eval = |device, mode| {
        evaluate_authentication(&data, &cfg, device, mode, Algorithm::Krr).accuracy()
    };
    let phone_unified = eval(DeviceSet::PhoneOnly, ContextMode::Unified);
    let combo_unified = eval(DeviceSet::Combined, ContextMode::Unified);
    let phone_ctx = eval(DeviceSet::PhoneOnly, ContextMode::PerContext);
    let combo_ctx = eval(DeviceSet::Combined, ContextMode::PerContext);

    // Paper's Table VII ordering: context helps, the second device helps,
    // and the deployed configuration is the best of the four.
    assert!(
        combo_ctx > phone_ctx,
        "combination {combo_ctx} should beat phone-only {phone_ctx} (w/ context)"
    );
    assert!(
        combo_unified > phone_unified,
        "combination {combo_unified} should beat phone-only {phone_unified} (w/o context)"
    );
    assert!(
        combo_ctx > combo_unified,
        "context {combo_ctx} should beat unified {combo_unified} (combination)"
    );
    assert!(
        phone_ctx > phone_unified,
        "context {phone_ctx} should beat unified {phone_unified} (phone)"
    );
    // Bands (generous at reduced scale): deployed config in the high 90s,
    // unified phone-only well below.
    assert!(combo_ctx > 0.93, "deployed accuracy {combo_ctx}");
    assert!(
        phone_unified < 0.93,
        "weakest config accuracy {phone_unified}"
    );
}

#[test]
fn table6_algorithm_ordering_holds() {
    let cfg = shape_cfg();
    let data = collect_population_features(&cfg);
    let eval = |alg| {
        evaluate_authentication(
            &data,
            &cfg,
            DeviceSet::Combined,
            ContextMode::PerContext,
            alg,
        )
        .accuracy()
    };
    let krr = eval(Algorithm::Krr);
    let nb = eval(Algorithm::NaiveBayes);
    let lin = eval(Algorithm::LinearRegression);

    // Paper's Table VI shape: the regularised kernel method clearly beats
    // the unregularised and independence-assuming baselines.
    assert!(krr > nb, "KRR {krr} should beat naive Bayes {nb}");
    assert!(krr > lin, "KRR {krr} should beat linear regression {lin}");
}
