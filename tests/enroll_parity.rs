//! Parity suite for batched enrollment: `TrainingServer::enroll_many`
//! (one pinned negative epoch + shared Gram workspace for the whole
//! batch) must produce authenticators whose decisions agree with the
//! sequential per-user path — `train_authenticator_epoch` seeded with the
//! same pinned epoch — to tight epsilon on the paper's deployed
//! 300-sample window (6 s × 50 Hz). The shared path reorders float
//! summations, so the pin is epsilon parity, not bit parity (the existing
//! `batch_parity`/`persist_parity` suites keep the per-window paths
//! bit-identical).
//!
//! Also covers the pipeline/fleet plumbing: `SmarterYou::enroll_with`
//! completes the enrollment phase in one step, records the
//! `EnrollmentComplete` event, adopts the workspace epoch, and serves its
//! fits off the shared block (observable as fit-cache hits);
//! `FleetEngine::enroll_many` batches a whole fleet against one workspace.

mod common;

use common::{build_world, World, WorldSeeds};
use rand::rngs::StdRng;
use rand::SeedableRng;
use smarteryou::core::{
    CoreError, FleetEngine, ResponsePolicy, SystemEvent, SystemPhase, TrainingHandle,
};
use smarteryou::ml::KrrFitCache;
use smarteryou::sensors::{UsageContext, UserId, UserProfile};

const SEEDS: WorldSeeds = WorldSeeds {
    population: 0xE27011,
    pool_gen: 0xE27012,
    detector_rng: 0xE27013,
};

/// The paper's deployed window: 6 s at 50 Hz = 300 samples.
const WINDOW_SECS: f64 = 6.0;

/// Decisions between the shared-workspace and sequential fits may differ
/// only by float summation order and the closed-form moment algebra
/// (`G − n·μμᵀ` vs a two-pass variance on raw sensor features whose
/// scales span orders of magnitude). Observed divergence is ~1e-9;
/// pinned at 1e-6 — six orders below the accept threshold's scale.
const EPS: f64 = 1e-6;

/// Harvests a user's per-context enrollment buffers by running a scratch
/// pipeline through the per-window enrollment path.
fn enroll_buffers(world: &World, user: &UserProfile, seed: u64) -> [Vec<Vec<f64>>; 2] {
    let mut pipeline = world.pipeline_with(
        seed,
        ResponsePolicy {
            rejects_to_lock: usize::MAX,
        },
        None,
    );
    let stream = world.window_stream(user, seed, 0);
    for _pass in 0..9 {
        if pipeline.authenticator().is_some() {
            break;
        }
        for w in &stream {
            pipeline.process_window(w).expect("window processes");
        }
    }
    assert!(
        pipeline.authenticator().is_some(),
        "scratch pipeline failed to enroll"
    );
    pipeline.enrollment_buffers().clone()
}

#[test]
fn enroll_many_matches_sequential_epoch_training() {
    let world = build_world(3, WINDOW_SECS, SEEDS);
    let users: Vec<[Vec<Vec<f64>>; 2]> = world
        .users
        .iter()
        .enumerate()
        .map(|(u, profile)| enroll_buffers(&world, profile, 0xA11CE ^ (u as u64 + 1)))
        .collect();

    let (epoch, batched) = world
        .server
        .lock()
        .enroll_many(&users, &world.cfg, &mut StdRng::seed_from_u64(0xBEEF))
        .expect("batched enrollment");
    assert_eq!(batched.len(), users.len());

    // Probe set: genuine rows from every user (both contexts), so the
    // comparison covers accept- and reject-side confidences.
    let probes: Vec<Vec<f64>> = users
        .iter()
        .flat_map(|buffers| buffers.iter().flat_map(|slot| slot.iter().take(3).cloned()))
        .collect();

    for (user, batch_auth) in users.iter().zip(&batched) {
        // The frozen epoch fit consumes no randomness, so seeding the
        // sequential path with the batch's pinned epoch must reproduce
        // its training set exactly.
        let mut pinned = Some(epoch.clone());
        let mut caches: [KrrFitCache; 2] = Default::default();
        let sequential = world
            .server
            .lock()
            .train_authenticator_epoch(
                user,
                &world.cfg,
                &mut StdRng::seed_from_u64(0xD00D),
                &mut pinned,
                &mut caches,
            )
            .expect("sequential training");
        assert_eq!(
            pinned.as_ref().map(|e| e.pool_version()),
            Some(epoch.pool_version()),
            "sequential path must reuse the batch epoch, not resample"
        );
        for ctx in UsageContext::ALL {
            for probe in &probes {
                let a = batch_auth.authenticate(ctx, probe).confidence;
                let b = sequential.authenticate(ctx, probe).confidence;
                assert!(
                    (a - b).abs() < EPS,
                    "{ctx:?}: batched confidence {a} vs sequential {b}"
                );
            }
        }
    }
}

#[test]
fn enroll_with_completes_enrollment_and_hits_the_shared_block() {
    let world = build_world(1, WINDOW_SECS, SEEDS);
    let buffers = enroll_buffers(&world, &world.users[0], 0x5EED);

    let ws = world
        .server
        .enrollment_workspace(&world.cfg, &mut StdRng::seed_from_u64(0xFACE))
        .expect("workspace builds");

    let mut pipeline = world.pipeline_with(
        0x0DD1,
        ResponsePolicy {
            rejects_to_lock: usize::MAX,
        },
        None,
    );
    assert_eq!(pipeline.phase(), SystemPhase::Enrollment);
    assert_eq!(pipeline.fit_cache_stats(), (0, 0));

    pipeline
        .enroll_with(&ws, buffers.clone())
        .expect("batched enrollment");
    assert_eq!(pipeline.phase(), SystemPhase::ContinuousAuth);
    assert!(matches!(
        pipeline.events().last(),
        Some(SystemEvent::EnrollmentComplete { .. })
    ));
    // The production config is linear/primal: both per-context fits must
    // come off the shared negative block, never the sequential fallback.
    let (hits, misses) = pipeline.fit_cache_stats();
    assert!(hits >= 2, "expected ≥2 shared-block hits, saw {hits}");
    assert_eq!(misses, 0, "no fit may fall back to a full factorisation");
    assert_eq!(pipeline.enrollment_buffers(), &buffers);

    // Re-enrolling an enrolled pipeline is a typed error, not a retrain.
    assert!(matches!(
        pipeline.enroll_with(&ws, buffers),
        Err(CoreError::InvalidConfig(_))
    ));

    // The installed model matches the sequential frozen fit against the
    // same pinned epoch (the server-level parity is pinned exhaustively
    // by `enroll_many_matches_sequential_epoch_training`; this spot-check
    // proves the pipeline installed *that* model, wired to its adopted
    // epoch).
    let mut pinned = Some(ws.epoch().clone());
    let mut caches: [KrrFitCache; 2] = Default::default();
    let sequential = world
        .server
        .lock()
        .train_authenticator_epoch(
            pipeline.enrollment_buffers(),
            &world.cfg,
            &mut StdRng::seed_from_u64(0xD00D),
            &mut pinned,
            &mut caches,
        )
        .expect("sequential training");
    let installed = pipeline.authenticator().expect("enrolled");
    for ctx in UsageContext::ALL {
        for probe in pipeline.enrollment_buffers()[ctx.index()].iter().take(4) {
            let a = installed.authenticate(ctx, probe).confidence;
            let b = sequential.authenticate(ctx, probe).confidence;
            assert!((a - b).abs() < EPS, "{ctx:?}: installed {a} vs frozen {b}");
        }
    }

    // And the enrolled pipeline scores fresh windows end-to-end.
    let stream = world.window_stream(&world.users[0], 0x7E57, 4);
    for w in &stream[stream.len() - 4..] {
        let outcome = pipeline.process_window(w).expect("scores after enrollment");
        assert!(
            matches!(outcome, smarteryou::core::ProcessOutcome::Decision { .. }),
            "batched-enrolled pipeline must authenticate, got {outcome:?}"
        );
    }
}

#[test]
fn fleet_engine_enroll_many_batches_the_whole_fleet() {
    let world = build_world(3, WINDOW_SECS, SEEDS);
    let mut engine = FleetEngine::new();
    for u in 0..world.users.len() {
        let pipeline = world.pipeline_with(
            0xF1EE7 ^ (u as u64 + 1),
            ResponsePolicy {
                rejects_to_lock: usize::MAX,
            },
            None,
        );
        engine.register(UserId(u), pipeline).expect("registers");
    }
    let batch: Vec<(UserId, [Vec<Vec<f64>>; 2])> = world
        .users
        .iter()
        .enumerate()
        .map(|(u, profile)| {
            (
                UserId(u),
                enroll_buffers(&world, profile, 0xA11CE ^ (u as u64 + 1)),
            )
        })
        .collect();

    // An unknown user anywhere in the batch fails up front — nobody
    // enrolls.
    let mut poisoned = batch.clone();
    poisoned.push((UserId(99), poisoned[0].1.clone()));
    assert!(matches!(
        engine.enroll_many(poisoned, &mut StdRng::seed_from_u64(1)),
        Err(CoreError::UnknownUser(UserId(99)))
    ));
    for u in 0..world.users.len() {
        assert!(engine
            .pipeline(UserId(u))
            .expect("registered")
            .authenticator()
            .is_none());
    }

    let enrolled = engine
        .enroll_many(batch, &mut StdRng::seed_from_u64(0xCAB))
        .expect("batched enrollment");
    assert_eq!(enrolled, world.users.len());
    for u in 0..world.users.len() {
        let pipeline = engine.pipeline(UserId(u)).expect("registered");
        assert!(pipeline.authenticator().is_some(), "user {u} not enrolled");
        let (hits, misses) = pipeline.fit_cache_stats();
        assert!(
            hits >= 2,
            "user {u}: expected shared-block hits, saw {hits}"
        );
        assert_eq!(misses, 0, "user {u}: unexpected fallback fit");
    }
}
