//! Parity and ownership tests for the sharded fleet: a [`ShardedFleet`]
//! that routes users over several eviction-churning shards **and migrates
//! them between shards mid-stream** must produce bit-identical decisions,
//! scores, and retrain events to a single eviction-disabled [`FleetEngine`]
//! fed the same windows. Also pins the ownership-epoch protocol (a stale
//! shard's save or rehydrate is a typed [`PersistError::StaleEpoch`], never
//! a fork of the pipeline), the router's purity/stability, and the
//! O(resident) tick contract.

mod common;

use std::sync::Arc;
use std::time::{Duration, Instant};

use common::{assert_outcomes_identical, build_world as build_common_world, World, WorldSeeds};
use parking_lot::Mutex;
use proptest::prelude::*;
use smarteryou::core::engine::{BackpressurePolicy, FleetEngine, ShardRouter, ShardedFleet};
use smarteryou::core::persist::{MemorySnapshotStore, PersistError, SharedSnapshotStore};
use smarteryou::core::{
    CoreError, ProcessOutcome, ResponsePolicy, RetrainPolicy, SmarterYou, TrainingHandle,
    TrainingServer,
};
use smarteryou::sensors::{DualDeviceWindow, UserId};

fn build_world(num_users: usize, window_secs: f64) -> World {
    // Seeds pin this suite's window streams independently of the other
    // parity suites'.
    build_common_world(
        num_users,
        window_secs,
        WorldSeeds {
            population: 33_007,
            pool_gen: 11,
            detector_rng: 21,
        },
    )
}

/// This suite's pipeline: keeps scoring after rejections and retrains
/// eagerly, so parity runs exercise the retrain path — including the RNG
/// draws and the frozen negative epoch that must survive migrations.
fn pipeline(world: &World, seed: u64, retrain_period: usize) -> SmarterYou {
    world.pipeline_with(
        seed,
        ResponsePolicy {
            rejects_to_lock: usize::MAX,
        },
        Some(RetrainPolicy {
            threshold: 1e9,
            period: retrain_period,
            max_reject_fraction: 1.0,
        }),
    )
}

/// The headline invariant: a 4-shard fleet with per-shard eviction churn
/// **and forced cross-shard migrations mid-stream** is bit-identical to one
/// eviction-disabled engine, over 6 users at the paper's deployed
/// 6 s × 50 Hz = 300-sample window.
#[test]
fn sharded_fleet_with_migrations_matches_single_engine() {
    let num_users = 6;
    let num_shards = 4;
    let world = build_world(num_users, 6.0);
    let streams: Vec<Vec<DualDeviceWindow>> = world
        .users
        .iter()
        .enumerate()
        .map(|(u, user)| world.window_stream(user, 9_000 + u as u64, 12))
        .collect();

    let mut reference = FleetEngine::new();
    // Capacity 1 per shard: every tick forces snapshot round-trips through
    // the shared store on top of the migration churn.
    let mut fleet = ShardedFleet::new(num_shards, Box::new(MemorySnapshotStore::new()), 1);
    for u in 0..num_users {
        reference
            .register(UserId(u), pipeline(&world, u as u64 + 1, 5))
            .expect("register");
        fleet
            .register(UserId(u), pipeline(&world, u as u64 + 1, 5))
            .expect("register");
    }

    let mut cursors = vec![0usize; num_users];
    let mut ref_outcomes: Vec<Vec<ProcessOutcome>> = vec![Vec::new(); num_users];
    let mut fleet_outcomes: Vec<Vec<ProcessOutcome>> = vec![Vec::new(); num_users];
    let mut round = 0usize;
    let (mut total_retrains_ref, mut total_retrains_fleet) = (0usize, 0usize);
    while cursors.iter().zip(&streams).any(|(&c, s)| c < s.len()) {
        // Churn a user to another shard every round, cycling through users
        // and targets — mid-enrollment, mid-retrain-window, whenever the
        // schedule lands.
        let user = UserId(round % num_users);
        let target = (fleet.shard_of(user).expect("registered") + 1) % num_shards;
        fleet.migrate(user, target).expect("migrate");
        assert_eq!(fleet.shard_of(user), Some(target));

        // Vary both the tick size and which users participate, so some
        // pipelines idle several ticks and age out of shard LRUs.
        let per_user = round % 3 + 1;
        for (u, stream) in streams.iter().enumerate() {
            if !round.is_multiple_of(u % 3 + 1) {
                continue; // user u skips this tick
            }
            for _ in 0..per_user {
                if cursors[u] < stream.len() {
                    let w = stream[cursors[u]].clone();
                    cursors[u] += 1;
                    reference.submit(UserId(u), w.clone()).expect("submit");
                    fleet.submit(UserId(u), w).expect("submit");
                }
            }
        }
        // Every third round, migrate a user *after* their windows were
        // queued: release must carry the undelivered inbox to the target
        // shard, which scores it this very tick.
        if round % 3 == 2 {
            let user = UserId((round / 3) % num_users);
            let target = (fleet.shard_of(user).expect("registered") + 2) % num_shards;
            fleet.migrate(user, target).expect("mid-queue migrate");
        }
        let ref_report = reference.tick();
        assert!(ref_report.errors().is_empty(), "{:?}", ref_report.errors());
        assert_eq!(ref_report.evictions(), 0);
        total_retrains_ref += ref_report.retrains();
        for user in ref_report.users() {
            ref_outcomes[user.user.0].extend(user.outcomes.iter().cloned());
        }
        for report in fleet.tick() {
            assert!(report.errors().is_empty(), "{:?}", report.errors());
            assert!(report.eviction_errors().is_empty());
            total_retrains_fleet += report.retrains();
            for user in report.users() {
                fleet_outcomes[user.user.0].extend(user.outcomes.iter().cloned());
            }
        }
        round += 1;
    }

    assert!(
        fleet.migrations() as usize >= num_users,
        "every user must migrate at least once (got {})",
        fleet.migrations()
    );
    let churn: u64 = (0..num_shards)
        .map(|s| fleet.shard(s).eviction_totals().0)
        .sum();
    assert!(churn > 0, "parity run produced no eviction churn");
    assert!(
        total_retrains_ref > 0,
        "parity run never exercised the retrain path"
    );
    assert_eq!(total_retrains_ref, total_retrains_fleet);
    for u in 0..num_users {
        assert_outcomes_identical(&ref_outcomes[u], &fleet_outcomes[u], &format!("user {u}"));
    }
}

/// Migrating a user whose confidence tracker sits mid-retrain-window (and
/// whose negative epoch is already pinned from an earlier retrain) must not
/// perturb when the next retrain fires or what it trains.
#[test]
fn migrating_a_mid_retrain_user_preserves_parity() {
    let world = build_world(1, 2.0);
    let stream = world.window_stream(&world.users[0], 4_321, 24);
    let id = UserId(0);

    let mut reference = FleetEngine::new();
    reference
        .register(id, pipeline(&world, 7, 6))
        .expect("register");
    let mut fleet = ShardedFleet::new(3, Box::new(MemorySnapshotStore::new()), 1);
    fleet
        .register(id, pipeline(&world, 7, 6))
        .expect("register");

    let mut ref_outcomes = Vec::new();
    let mut fleet_outcomes = Vec::new();
    let mut migrated_mid_window = false;
    for (i, w) in stream.iter().enumerate() {
        // Once in continuous auth, migrate at a point where the rolling
        // window is partially filled (i.e. strictly between retrains).
        let rolling = fleet.shard_of(id).map(|s| {
            fleet
                .shard_mut(s)
                .rehydrate(id)
                .expect("rehydrate for inspection");
            fleet
                .shard(s)
                .pipeline(id)
                .expect("resident")
                .confidence_tracker()
                .rolling_len()
        });
        if let Some(rolling) = rolling {
            if rolling % 6 >= 2 {
                let target = (fleet.shard_of(id).unwrap() + 1) % 3;
                fleet.migrate(id, target).expect("migrate");
                migrated_mid_window = true;
            }
        }
        reference.submit(id, w.clone()).expect("submit");
        fleet.submit(id, w.clone()).expect("submit");
        let ref_report = reference.tick();
        assert!(ref_report.errors().is_empty(), "window {i}");
        for user in ref_report.users() {
            ref_outcomes.extend(user.outcomes.iter().cloned());
        }
        for report in fleet.tick() {
            assert!(report.errors().is_empty(), "window {i}");
            for user in report.users() {
                fleet_outcomes.extend(user.outcomes.iter().cloned());
            }
        }
    }
    assert!(migrated_mid_window, "schedule never migrated mid-window");
    assert!(
        ref_outcomes.iter().any(|o| matches!(
            o,
            ProcessOutcome::Decision {
                retrained: true,
                ..
            }
        )),
        "run never retrained"
    );
    assert_outcomes_identical(&ref_outcomes, &fleet_outcomes, "mid-retrain migration");
}

/// Migrating a user whose home-shard **ingest queue** still holds their
/// windows: the queued windows must travel with the user (drained on the
/// stale shard only to be forwarded, scored exclusively by the new owner)
/// and the outcome stream must stay bit-identical to the synchronous
/// reference — no window lost, duplicated, or scored on the stale shard.
#[test]
fn migrate_with_queued_ingest_windows_never_scores_on_the_stale_shard() {
    let world = build_world(1, 2.0);
    let stream = world.window_stream(&world.users[0], 5_432, 18);
    let id = UserId(0);
    let num_shards = 4;

    let mut reference = FleetEngine::new();
    reference
        .register(id, pipeline(&world, 11, 6))
        .expect("register");
    let mut fleet = ShardedFleet::new(num_shards, Box::new(MemorySnapshotStore::new()), 1);
    fleet
        .register(id, pipeline(&world, 11, 6))
        .expect("register");
    let router = fleet.enable_ingest(8, BackpressurePolicy::Reject);
    let home = router.shard_of(id);

    let mut ref_outcomes = Vec::new();
    let mut fleet_outcomes = Vec::new();
    let mut forwarded_total = 0usize;
    for (i, w) in stream.iter().enumerate() {
        reference.submit(id, w.clone()).expect("submit");
        router.submit(id, w.clone()).expect("queue has space");
        // Every third window, migrate *after* enqueueing — the window is
        // still sitting in the home shard's queue when ownership moves.
        if i % 3 == 0 {
            let target = (fleet.shard_of(id).expect("registered") + 1) % num_shards;
            fleet.migrate(id, target).expect("mid-queue migrate");
        }
        let owner = fleet.shard_of(id).expect("registered");
        for (shard, report) in fleet.tick().into_iter().enumerate() {
            assert!(report.errors().is_empty(), "window {i}");
            assert!(report.ingest_errors().is_empty(), "window {i}");
            assert!(
                report.misrouted().is_empty(),
                "fleet must consume misroutes"
            );
            forwarded_total += report.ingest_forwarded();
            if shard != owner {
                // The heart of the invariant: a shard that does not own
                // the user never scores their windows — stale shards only
                // ever hand them onward.
                assert!(
                    report.users().iter().all(|u| u.user != id),
                    "window {i}: stale shard {shard} scored a window for a user owned by {owner}"
                );
            }
            for user in report.users() {
                fleet_outcomes.extend(user.outcomes.iter().cloned());
            }
        }
        let ref_report = reference.tick();
        assert!(ref_report.errors().is_empty(), "window {i}");
        for user in ref_report.users() {
            ref_outcomes.extend(user.outcomes.iter().cloned());
        }
    }
    // Forwarded windows score one tick late; flush the tail.
    let mut flush = 0;
    while fleet_outcomes.len() < stream.len() {
        for report in fleet.tick() {
            assert!(report.errors().is_empty());
            for user in report.users() {
                fleet_outcomes.extend(user.outcomes.iter().cloned());
            }
        }
        flush += 1;
        assert!(flush < 16, "queued windows were lost in migration");
    }
    assert!(
        forwarded_total > 0,
        "schedule never left a queued window behind a migration"
    );
    assert!(
        fleet.shard_of(id) != Some(home) || fleet.migrations() >= 4,
        "user never left the home shard"
    );
    assert_eq!(
        fleet_outcomes.len(),
        stream.len(),
        "lost or duplicated windows"
    );
    assert_outcomes_identical(&ref_outcomes, &fleet_outcomes, "mid-queue ingest migration");
}

/// Registering a user an engine already holds — resident *or* parked — is
/// the typed [`CoreError::AlreadyRegistered`], and the existing
/// registration survives untouched. A silent overwrite in
/// `register_parked` would bump the store epoch and fence the engine's own
/// live pipeline out of ever saving again.
#[test]
fn re_registering_a_known_user_is_typed_and_touches_nothing() {
    let world = build_world(2, 2.0);
    let store = SharedSnapshotStore::new(Box::new(MemorySnapshotStore::new()));
    let id = UserId(0);

    let mut engine = FleetEngine::new().with_eviction(Box::new(store.clone()), 2);
    engine
        .register(id, pipeline(&world, 1, 6))
        .expect("register");
    let epoch_before = engine.epoch_of(id);

    // Resident user: both registration forms refuse with the typed error.
    let server: Arc<dyn TrainingHandle> = Arc::new(Mutex::new(TrainingServer::new()));
    assert_eq!(
        engine.register_parked(id, server.clone()).unwrap_err(),
        CoreError::AlreadyRegistered(id)
    );
    assert_eq!(
        engine.register(id, pipeline(&world, 99, 6)).unwrap_err(),
        CoreError::AlreadyRegistered(id)
    );
    // ...and nothing about the existing registration moved: still
    // resident, same epoch claim (an overwrite would have bumped it and
    // fenced the live pipeline's saves).
    assert_eq!(engine.is_resident(id), Some(true));
    assert_eq!(engine.epoch_of(id), epoch_before);
    let mut probe = store.clone();
    use smarteryou::core::persist::SnapshotStore;
    assert_eq!(probe.epoch(id).expect("store epoch"), epoch_before.unwrap());

    // Parked user: same contract.
    engine
        .register(UserId(1), pipeline(&world, 2, 6))
        .expect("register");
    let w = world.window_stream(&world.users[1], 66, 0)[0].clone();
    engine.submit(UserId(1), w).expect("submit");
    engine.enable_eviction(Box::new(store.clone()), 1);
    engine.tick();
    assert_eq!(engine.is_resident(id), Some(false));
    assert_eq!(
        engine.register_parked(id, server).unwrap_err(),
        CoreError::AlreadyRegistered(id)
    );
    assert_eq!(engine.epoch_of(id), epoch_before);

    // The sharded fleet surfaces the same typed error.
    let mut fleet = ShardedFleet::new(2, Box::new(MemorySnapshotStore::new()), 1);
    fleet
        .register(id, pipeline(&world, 3, 6))
        .expect("register");
    assert_eq!(
        fleet.register(id, pipeline(&world, 4, 6)).unwrap_err(),
        CoreError::AlreadyRegistered(id)
    );
    let server: Arc<dyn TrainingHandle> = Arc::new(Mutex::new(TrainingServer::new()));
    assert_eq!(
        fleet.register_parked(id, server).unwrap_err(),
        CoreError::AlreadyRegistered(id)
    );
}

/// The rehydrate race: once another engine claims a user through the shared
/// store, the previous owner's save **and** rehydrate are rejected with a
/// typed stale-epoch error — its copy can neither clobber nor fork the new
/// owner's state.
#[test]
fn stale_epoch_rejects_the_losing_side_of_a_race() {
    let world = build_world(2, 2.0);
    let store = SharedSnapshotStore::new(Box::new(MemorySnapshotStore::new()));
    let id = UserId(0);

    // Engine A owns both users (capacity 1, so user 0 can be parked).
    let mut a = FleetEngine::new().with_eviction(Box::new(store.clone()), 1);
    a.register(id, pipeline(&world, 1, 6)).expect("register");
    a.register(UserId(1), pipeline(&world, 2, 6))
        .expect("register");
    assert_eq!(a.epoch_of(id), Some(1));

    // Park user 0: submit only user 1 and tick, LRU evicts user 0.
    let w = world.window_stream(&world.users[1], 55, 0)[0].clone();
    a.submit(UserId(1), w.clone()).expect("submit");
    let report = a.tick();
    assert_eq!(report.evictions(), 1);
    assert_eq!(a.is_resident(id), Some(false));

    // A re-inspects the user, pulling the pipeline back into memory while
    // its claim is still current (stored epoch == held epoch).
    a.rehydrate(id).expect("owner can rehydrate");
    assert_eq!(a.is_resident(id), Some(true));

    // Engine B adopts user 0 through the shared store: claims epoch 2.
    let server: Arc<dyn TrainingHandle> = Arc::new(Mutex::new(TrainingServer::new()));
    let mut b = FleetEngine::new().with_eviction(Box::new(store.clone()), 4);
    b.register_parked(id, server).expect("adopt");
    assert_eq!(b.epoch_of(id), Some(2));

    // A still holds a resident copy from before the claim. Its eviction
    // save now loses the fence: the tick reports a stale-epoch eviction
    // error and keeps the pipeline resident rather than dropping state.
    let report = a.tick();
    assert_eq!(report.evictions(), 0);
    assert_eq!(report.eviction_errors().len(), 1);
    assert!(matches!(
        report.eviction_errors()[0],
        (user, PersistError::StaleEpoch { held: 1, stored: 2, .. }) if user == id
    ));
    assert_eq!(a.is_resident(id), Some(true));

    // An explicit release (the migration path) is the same typed error.
    assert!(matches!(
        a.release(id),
        Err(CoreError::Persist(PersistError::StaleEpoch {
            held: 1,
            stored: 2,
            ..
        }))
    ));

    // And had A's copy been parked instead, rehydrating it is rejected
    // too: drop A's claim to residency by building a fresh engine that
    // thinks it owns epoch 1... which is exactly engine C below.
    let mut c = FleetEngine::new().with_eviction(Box::new(store.clone()), 4);
    let server: Arc<dyn TrainingHandle> = Arc::new(Mutex::new(TrainingServer::new()));
    c.register_parked(id, server).expect("adopt on C"); // claims epoch 3
    let w0 = world.window_stream(&world.users[0], 77, 0)[0].clone();
    // B's claim (2) is now stale relative to C's (3): B cannot rehydrate.
    assert!(matches!(
        b.submit(id, w0),
        Err(CoreError::Persist(PersistError::StaleEpoch {
            held: 2,
            stored: 3,
            ..
        }))
    ));
}

/// The routing function is pure and restart-stable: these assignments are
/// pinned constants — if they ever change, parked users would rehydrate on
/// the wrong shard after a redeploy, so a change here must ship an explicit
/// re-routing migration.
#[test]
fn router_assignments_are_pinned() {
    let router = ShardRouter::new(4);
    let expected = [3, 1, 2, 1, 2, 2, 0, 3, 2, 0, 2, 1];
    let got: Vec<usize> = (0..expected.len())
        .map(|u| router.shard_of(UserId(u)))
        .collect();
    assert_eq!(got, expected, "UserId→shard mapping must stay stable");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Routing is a pure function of `UserId` and the shard count: two
    /// independently constructed routers agree, the result is in range,
    /// and re-querying never flips.
    #[test]
    fn routing_is_pure_and_in_range(id in 0..5_000_000usize, shards in 1..64usize) {
        let a = ShardRouter::new(shards);
        let b = ShardRouter::new(shards);
        let shard = a.shard_of(UserId(id));
        prop_assert!(shard < shards);
        prop_assert_eq!(shard, b.shard_of(UserId(id)));
        prop_assert_eq!(shard, a.shard_of(UserId(id)));
    }
}

/// The O(resident) regression guard: an engine with 100 resident pipelines
/// and 100k registered-but-parked users must tick in (about) the same time
/// as one with just the 100 — and must report that it scanned only the
/// resident slots. Before the resident-slot index, tick and the eviction
/// scan walked every registered slot.
#[test]
fn tick_cost_is_o_resident_not_o_registered() {
    let world = build_world(1, 2.0);
    let resident_users = 100usize;
    let parked_users = 100_000usize;

    let build = |parked: usize| {
        let mut engine = FleetEngine::new()
            .with_eviction(Box::new(MemorySnapshotStore::new()), resident_users + 28);
        for u in 0..resident_users {
            engine
                .register(UserId(u), pipeline(&world, u as u64 + 1, 6))
                .expect("register");
        }
        for p in 0..parked {
            let server: Arc<dyn TrainingHandle> = world.server.clone();
            engine
                .register_parked(UserId(resident_users + p), server)
                .expect("register_parked");
        }
        engine
    };
    // Minimum over repeated rounds of empty ticks: the scan cost without
    // scoring noise.
    let measure = |engine: &mut FleetEngine| -> Duration {
        let mut best = Duration::MAX;
        for _ in 0..5 {
            let start = Instant::now();
            for _ in 0..200 {
                engine.tick();
            }
            best = best.min(start.elapsed());
        }
        best
    };

    let mut small = build(0);
    let mut large = build(parked_users);
    assert_eq!(large.len(), resident_users + parked_users);

    // Structural guarantee: the tick walks resident slots only.
    let report = large.tick();
    assert_eq!(report.scanned_slots(), resident_users);
    assert_eq!(report.resident_pipelines(), resident_users);

    let small_time = measure(&mut small);
    let large_time = measure(&mut large);
    // "Within noise": generous 8× bound — an O(registered) walk over
    // 1 000× the users would blow through it by orders of magnitude.
    assert!(
        large_time < small_time * 8 + Duration::from_millis(20),
        "tick with {parked_users} parked users took {large_time:?} \
         vs {small_time:?} for none — not O(resident)"
    );
}
